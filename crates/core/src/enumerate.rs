//! Witness **enumeration**: find every transform explaining a pair.
//!
//! The matchers in [`crate::matchers`] recover *one* witness of a
//! promised pair; this module answers the stronger question — how many
//! witnesses does a family admit, and which are they? A circuit with
//! symmetries has several (the reason matchers may legitimately return a
//! witness different from a planted one), and a count of zero is a
//! complete proof of non-equivalence within the family.
//!
//! The engine is one **family miter** ([`FamilyMiter`]): the miter of
//! `C1` against `T ∘ C2 ∘ T'` where the candidate transform is *not*
//! baked into the clauses but selected by fresh **selector variables** —
//! a negation-mask bit per line, or a permutation one-hot matrix. Fixing
//! a candidate is then a set of assumption literals over the selectors:
//!
//! * `solve_under(candidate)` UNSAT ⇒ no distinguishing input exists ⇒
//!   the candidate **is** a witness;
//! * SAT ⇒ the model is a concrete counterexample for that candidate.
//!
//! Because candidates differ only in assumptions, one incremental
//! [`CdclSolver`] serves the whole family: clauses learned refuting (or
//! satisfying) one candidate prune the search for the next, instead of
//! paying a cold miter per candidate ([`EnumerationStrategy::AssumptionSweep`]).
//! The dual mode ([`EnumerationStrategy::BlockingClauses`]) leaves the
//! selectors free and repeatedly solves the family formula, **blocking**
//! each discovered non-witness selector assignment with a clause until
//! the formula is exhausted — the final UNSAT proves every unblocked
//! candidate is a witness in a single stroke. Both strategies return the
//! same witness set (differentially tested); the sweep is what the
//! serving layer runs, because assumptions leave a cached solver clean
//! for the next job while blocking clauses would poison it.
//!
//! The DPLL backend gets a semantics-compatible fallback (fresh
//! per-candidate solves under assumptions), keeping
//! [`SolverBackend`] interchangeable for differential testing.

use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

use revmatch_circuit::{Circuit, LinePermutation, NegationMask, NpTransform};
use revmatch_sat::{CdclSolver, Clause, Cnf, Lit, Solver, SolverBackend, Var};

use crate::equivalence::{Equivalence, Side};
use crate::error::MatchError;
use crate::miter::{encode_circuit, encode_xor};
use crate::witness::MatchWitness;

/// The candidate spaces a [`FamilyMiter`] can select over.
///
/// Each family corresponds to one equivalence class whose witnesses are
/// a pure negation mask or a pure wire permutation on one (or both)
/// sides; [`WitnessFamily::of`] maps the class to its family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WitnessFamily {
    /// Input negation masks (`N-I`): `2^n` candidates.
    InputNegation,
    /// Output negation masks (`I-N`): `2^n` candidates.
    OutputNegation,
    /// Independent input *and* output masks (`N-N`, a UNIQUE-SAT-hard
    /// class — exactly where a complete white-box sweep earns its keep):
    /// `4^n` candidates.
    BothNegations,
    /// Input wire permutations (`P-I`): `n!` candidates.
    InputPermutation,
    /// Output wire permutations (`I-P`): `n!` candidates.
    OutputPermutation,
}

impl WitnessFamily {
    /// Every family, in declaration order.
    pub const ALL: [WitnessFamily; 5] = [
        WitnessFamily::InputNegation,
        WitnessFamily::OutputNegation,
        WitnessFamily::BothNegations,
        WitnessFamily::InputPermutation,
        WitnessFamily::OutputPermutation,
    ];

    /// The equivalence class this family enumerates.
    pub fn equivalence(self) -> Equivalence {
        match self {
            Self::InputNegation => Equivalence::new(Side::N, Side::I),
            Self::OutputNegation => Equivalence::new(Side::I, Side::N),
            Self::BothNegations => Equivalence::new(Side::N, Side::N),
            Self::InputPermutation => Equivalence::new(Side::P, Side::I),
            Self::OutputPermutation => Equivalence::new(Side::I, Side::P),
        }
    }

    /// The family enumerating `e`, when one exists.
    pub fn of(e: Equivalence) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.equivalence() == e)
    }

    /// Maximum width for **full-space enumeration**: the candidate space
    /// must stay enumerable (`2^n`, `4^n` or `n!` solver calls in a
    /// sweep).
    pub fn max_width(self) -> usize {
        match self {
            Self::InputNegation | Self::OutputNegation => 14,
            Self::BothNegations => 7,
            Self::InputPermutation | Self::OutputPermutation => 7,
        }
    }

    /// Maximum width for **encoding** a [`FamilyMiter`] — wider than the
    /// enumeration cap, because callers sweeping an explicit candidate
    /// list (a bench family, a client-supplied shortlist) only pay per
    /// candidate, not for the whole space. Bounded by the selector-code
    /// packing (`u128`) and the `u64` masks.
    pub fn max_encode_width(self) -> usize {
        match self {
            Self::InputNegation | Self::OutputNegation => 24,
            Self::BothNegations => 24,
            Self::InputPermutation | Self::OutputPermutation => 11,
        }
    }

    /// Number of candidate witnesses at `width`.
    ///
    /// Only the selected family's count is computed — the factorial is
    /// never evaluated for negation families, whose widths may exceed
    /// where `n!` fits a `u64`.
    pub fn candidate_count(self, width: usize) -> u64 {
        match self {
            Self::InputNegation | Self::OutputNegation => 1u64 << width,
            Self::BothNegations => 1u64 << (2 * width),
            Self::InputPermutation | Self::OutputPermutation => (1..=width as u64).product(),
        }
    }

    /// Every candidate witness at `width`, in a deterministic order
    /// (ascending masks; lexicographic permutations).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::EnumerationTooWide`] beyond
    /// [`WitnessFamily::max_width`].
    pub fn candidates(self, width: usize) -> Result<Vec<MatchWitness>, MatchError> {
        if width > self.max_width() {
            return Err(MatchError::EnumerationTooWide {
                width,
                max: self.max_width(),
            });
        }
        let mask_witness = |mask: u64| NegationMask::new(mask, width).expect("mask in range");
        let out = match self {
            Self::InputNegation => (0..1u64 << width)
                .map(|m| MatchWitness::input_negation(mask_witness(m)))
                .collect(),
            Self::OutputNegation => (0..1u64 << width)
                .map(|m| MatchWitness::output_negation(mask_witness(m)))
                .collect(),
            Self::BothNegations => {
                let id = LinePermutation::identity(width);
                let mut all = Vec::with_capacity(1 << (2 * width));
                for min in 0..1u64 << width {
                    for mout in 0..1u64 << width {
                        all.push(
                            MatchWitness::new(
                                NpTransform::new(mask_witness(min), id.clone())
                                    .expect("same width"),
                                NpTransform::new(mask_witness(mout), id.clone())
                                    .expect("same width"),
                            )
                            .expect("same width"),
                        );
                    }
                }
                all
            }
            Self::InputPermutation => permutations(width)
                .into_iter()
                .map(|map| {
                    MatchWitness::input_permutation(
                        LinePermutation::new(map).expect("valid permutation"),
                    )
                })
                .collect(),
            Self::OutputPermutation => permutations(width)
                .into_iter()
                .map(|map| {
                    MatchWitness::output_permutation(
                        LinePermutation::new(map).expect("valid permutation"),
                    )
                })
                .collect(),
        };
        Ok(out)
    }

    /// The stable lowercase label used in flags and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::InputNegation => "input-negation",
            Self::OutputNegation => "output-negation",
            Self::BothNegations => "both-negations",
            Self::InputPermutation => "input-permutation",
            Self::OutputPermutation => "output-permutation",
        }
    }
}

impl fmt::Display for WitnessFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for WitnessFamily {
    type Err = MatchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .into_iter()
            .find(|f| f.as_str() == s)
            .ok_or_else(|| MatchError::Parse {
                reason: format!("unknown witness family {s:?}"),
            })
    }
}

/// Every permutation of `0..n`, lexicographic.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut all = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    loop {
        all.push(items.clone());
        // Next lexicographic permutation (Knuth's algorithm L).
        let Some(i) = items.windows(2).rposition(|w| w[0] < w[1]) else {
            return all;
        };
        let j = items
            .iter()
            .rposition(|&x| x > items[i])
            .expect("successor exists");
        items.swap(i, j);
        items[i + 1..].reverse();
    }
}

/// A miter over a whole witness family: the shared-input equivalence
/// check of `C1` against `selector(C2)` where the candidate transform is
/// chosen by assumption literals over selector variables — see the
/// [module docs](self).
///
/// Variable layout: shared inputs `0..n`, selectors
/// `n..n + selector_count`, then Tseitin gate variables. The layout is
/// stable, so a solver built once keeps serving candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyMiter {
    /// The family formula: satisfiable under a candidate's assumptions
    /// exactly on that candidate's distinguishing inputs.
    pub cnf: Cnf,
    family: WitnessFamily,
    width: usize,
    sel_base: usize,
    sel_count: usize,
}

impl FamilyMiter {
    /// Encodes the family miter of `c1` against `family(C2)`.
    ///
    /// # Errors
    ///
    /// [`MatchError::WidthMismatch`] on width disagreement,
    /// [`MatchError::EnumerationTooWide`] beyond the family's width cap.
    pub fn build(c1: &Circuit, c2: &Circuit, family: WitnessFamily) -> Result<Self, MatchError> {
        let n = c1.width();
        if n != c2.width() {
            return Err(MatchError::WidthMismatch {
                left: n,
                right: c2.width(),
            });
        }
        if n > family.max_encode_width() {
            return Err(MatchError::EnumerationTooWide {
                width: n,
                max: family.max_encode_width(),
            });
        }
        let sel_count = match family {
            WitnessFamily::InputNegation | WitnessFamily::OutputNegation => n,
            WitnessFamily::BothNegations => 2 * n,
            WitnessFamily::InputPermutation | WitnessFamily::OutputPermutation => n * n,
        };
        let sel_base = n;
        let mut cnf = Cnf::new(n + sel_count);
        let mut next_var = n + sel_count;
        let inputs: Vec<Lit> = (0..n).map(|i| Lit::positive(Var(i))).collect();

        // C1 runs on the raw shared inputs.
        let mut state1 = inputs.clone();
        encode_circuit(c1, &mut cnf, &mut state1, &mut next_var);

        // C2 runs on the selector-transformed inputs.
        let mut state2: Vec<Lit> = match family {
            WitnessFamily::InputNegation | WitnessFamily::BothNegations => (0..n)
                .map(|j| {
                    let s = Lit::positive(Var(sel_base + j));
                    encode_xor(&mut cnf, inputs[j], s, &mut next_var)
                })
                .collect(),
            WitnessFamily::InputPermutation => {
                encode_one_hot_rows(&mut cnf, sel_base, n);
                (0..n)
                    .map(|j| encode_mux(&mut cnf, &inputs, sel_base + j * n, &mut next_var))
                    .collect()
            }
            WitnessFamily::OutputNegation | WitnessFamily::OutputPermutation => inputs.clone(),
        };
        encode_circuit(c2, &mut cnf, &mut state2, &mut next_var);

        // Predicted C1 output i from C2's outputs and the output-side
        // selectors, then diff_i ↔ out1_i ⊕ predicted_i; assert OR(diff).
        let out_sel_base = match family {
            WitnessFamily::OutputNegation | WitnessFamily::OutputPermutation => sel_base,
            WitnessFamily::BothNegations => sel_base + n,
            _ => 0,
        };
        if family == WitnessFamily::OutputPermutation {
            encode_one_hot_rows(&mut cnf, out_sel_base, n);
        }
        let mut diff_lits = Vec::with_capacity(n);
        for (i, &a) in state1.iter().enumerate().take(n) {
            let b = match family {
                WitnessFamily::OutputNegation | WitnessFamily::BothNegations => {
                    let s = Lit::positive(Var(out_sel_base + i));
                    encode_xor(&mut cnf, state2[i], s, &mut next_var)
                }
                WitnessFamily::OutputPermutation => {
                    encode_mux(&mut cnf, &state2[..n], out_sel_base + i * n, &mut next_var)
                }
                _ => state2[i],
            };
            diff_lits.push(encode_xor(&mut cnf, a, b, &mut next_var));
        }
        cnf.add_clause(Clause::new(diff_lits));
        Ok(Self {
            cnf,
            family,
            width: n,
            sel_base,
            sel_count,
        })
    }

    /// The enumerated family.
    pub fn family(&self) -> WitnessFamily {
        self.family
    }

    /// Circuit width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of selector variables.
    pub fn selector_count(&self) -> usize {
        self.sel_count
    }

    /// The branch hint: shared input variables first (selectors are
    /// assumed, never decided, in sweep mode).
    pub fn input_hint(&self) -> Vec<usize> {
        (0..self.width).collect()
    }

    /// Decodes the shared input pattern (a counterexample) from a model.
    pub fn decode_input(&self, model: &[bool]) -> u64 {
        let mut input = 0u64;
        for (i, &b) in model.iter().take(self.width).enumerate() {
            if b {
                input |= 1 << i;
            }
        }
        input
    }

    /// The assumption literals fixing `candidate` — one polarity per
    /// selector variable, so the selected transform is fully determined
    /// by propagation alone.
    ///
    /// # Errors
    ///
    /// [`MatchError::WidthMismatch`] on width disagreement,
    /// [`MatchError::FamilyMismatch`] when the candidate uses transforms
    /// outside the family's class.
    pub fn assumptions(&self, candidate: &MatchWitness) -> Result<Vec<Lit>, MatchError> {
        if candidate.width() != self.width {
            return Err(MatchError::WidthMismatch {
                left: self.width,
                right: candidate.width(),
            });
        }
        if !candidate.conforms_to(self.family.equivalence()) {
            return Err(MatchError::FamilyMismatch);
        }
        let n = self.width;
        let mask_lits = |base: usize, mask: NegationMask, out: &mut Vec<Lit>| {
            for j in 0..n {
                let var = Var(base + j);
                out.push(if mask.bit(j) {
                    Lit::positive(var)
                } else {
                    Lit::negative(var)
                });
            }
        };
        let perm_lits = |base: usize, pi: &LinePermutation, out: &mut Vec<Lit>| {
            let inv = pi.inverse();
            for j in 0..n {
                let src = inv.apply_index(j);
                for k in 0..n {
                    let var = Var(base + j * n + k);
                    out.push(if k == src {
                        Lit::positive(var)
                    } else {
                        Lit::negative(var)
                    });
                }
            }
        };
        let mut lits = Vec::with_capacity(self.sel_count);
        match self.family {
            WitnessFamily::InputNegation => mask_lits(self.sel_base, candidate.nu_x(), &mut lits),
            WitnessFamily::OutputNegation => mask_lits(self.sel_base, candidate.nu_y(), &mut lits),
            WitnessFamily::BothNegations => {
                mask_lits(self.sel_base, candidate.nu_x(), &mut lits);
                mask_lits(self.sel_base + n, candidate.nu_y(), &mut lits);
            }
            WitnessFamily::InputPermutation => {
                perm_lits(self.sel_base, candidate.pi_x(), &mut lits);
            }
            WitnessFamily::OutputPermutation => {
                perm_lits(self.sel_base, candidate.pi_y(), &mut lits);
            }
        }
        Ok(lits)
    }

    /// Packs a candidate's selector assignment into a set-membership key
    /// (selector count ≤ 2n or n² ≤ 49 bits, well within `u128`).
    fn selector_code_of(&self, candidate: &MatchWitness) -> Result<u128, MatchError> {
        let lits = self.assumptions(candidate)?;
        let mut code = 0u128;
        for l in lits {
            if !l.negative {
                code |= 1 << (l.var.0 - self.sel_base);
            }
        }
        Ok(code)
    }

    /// Packs a model's selector assignment into the same key space.
    fn selector_code_of_model(&self, model: &[bool]) -> u128 {
        let mut code = 0u128;
        for i in 0..self.sel_count {
            if model[self.sel_base + i] {
                code |= 1 << i;
            }
        }
        code
    }

    /// The blocking clause excluding a model's selector assignment.
    fn blocking_clause(&self, model: &[bool]) -> Vec<Lit> {
        (0..self.sel_count)
            .map(|i| {
                let var = Var(self.sel_base + i);
                if model[self.sel_base + i] {
                    Lit::negative(var)
                } else {
                    Lit::positive(var)
                }
            })
            .collect()
    }
}

/// Selector-controlled multiplexer: fresh `out` with
/// `s_k → (out ↔ sources[k])` for the `n` selector variables starting at
/// `row_base`; returns `out`. Under a one-hot selector row the output is
/// fully propagation-determined.
fn encode_mux(cnf: &mut Cnf, sources: &[Lit], row_base: usize, next_var: &mut usize) -> Lit {
    let out = Lit::positive(Var(*next_var));
    *next_var += 1;
    for (k, &src) in sources.iter().enumerate() {
        let s = Lit::positive(Var(row_base + k));
        cnf.add_clause(Clause::new(vec![s.negated(), src.negated(), out]));
        cnf.add_clause(Clause::new(vec![s.negated(), src, out.negated()]));
    }
    out
}

/// Permutation-matrix constraints over an `n × n` selector block at
/// `base`: each row has at least one true selector, and both rows and
/// columns are pairwise at-most-one. Needed so free-selector models
/// (blocking-clause mode) decode to genuine permutations; harmless under
/// full assumptions.
fn encode_one_hot_rows(cnf: &mut Cnf, base: usize, n: usize) {
    let s = |j: usize, k: usize| Lit::positive(Var(base + j * n + k));
    for j in 0..n {
        cnf.add_clause((0..n).map(|k| s(j, k)).collect());
        for k1 in 0..n {
            for k2 in k1 + 1..n {
                cnf.add_clause(Clause::new(vec![s(j, k1).negated(), s(j, k2).negated()]));
            }
        }
    }
    for k in 0..n {
        for j1 in 0..n {
            for j2 in j1 + 1..n {
                cnf.add_clause(Clause::new(vec![s(j1, k).negated(), s(j2, k).negated()]));
            }
        }
    }
}

/// How [`enumerate_witnesses_sat_with`] walks the candidate space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumerationStrategy {
    /// One incremental solver, one `solve_under` per candidate: UNSAT ⇒
    /// witness. Learned clauses persist across candidates; this is the
    /// serving layer's mode (assumptions leave a cached solver clean).
    AssumptionSweep,
    /// Selectors left free: repeatedly solve, **block** the selector
    /// assignment of each model (a non-witness with its counterexample),
    /// and stop at UNSAT — every unblocked candidate is then a witness.
    /// Solve count is `#non-witnesses + 1` instead of `#candidates`.
    BlockingClauses,
}

/// Result of a family enumeration.
#[derive(Debug, Clone)]
pub struct WitnessEnumeration {
    /// Every witness in the family, in the deterministic candidate order
    /// of [`WitnessFamily::candidates`].
    pub witnesses: Vec<MatchWitness>,
    /// Size of the candidate space swept.
    pub candidates: u64,
    /// Solver calls spent.
    pub solves: u64,
}

impl WitnessEnumeration {
    /// Number of witnesses found.
    pub fn count(&self) -> u64 {
        self.witnesses.len() as u64
    }
}

/// Enumerates every witness of `family` explaining `(c1, c2)` on the
/// default backend and strategy (CDCL assumption sweep).
///
/// # Errors
///
/// [`MatchError::WidthMismatch`] / [`MatchError::EnumerationTooWide`]
/// from the encoding.
pub fn enumerate_witnesses_sat(
    c1: &Circuit,
    c2: &Circuit,
    family: WitnessFamily,
) -> Result<WitnessEnumeration, MatchError> {
    enumerate_witnesses_sat_with(
        c1,
        c2,
        family,
        SolverBackend::default(),
        EnumerationStrategy::AssumptionSweep,
    )
}

/// [`enumerate_witnesses_sat`] on an explicit backend and strategy.
///
/// # Errors
///
/// Same as [`enumerate_witnesses_sat`].
pub fn enumerate_witnesses_sat_with(
    c1: &Circuit,
    c2: &Circuit,
    family: WitnessFamily,
    backend: SolverBackend,
    strategy: EnumerationStrategy,
) -> Result<WitnessEnumeration, MatchError> {
    let miter = FamilyMiter::build(c1, c2, family)?;
    match strategy {
        EnumerationStrategy::AssumptionSweep => match backend {
            SolverBackend::Cdcl => {
                let mut solver = CdclSolver::new(&miter.cnf).with_branch_hint(miter.input_hint());
                sweep_family(&mut solver, &miter, None)
            }
            SolverBackend::Dpll => sweep_family_dpll(&miter, None),
        },
        EnumerationStrategy::BlockingClauses => {
            enumerate_blocking(&miter, backend, family.candidates(miter.width)?)
        }
    }
}

/// Counts the witnesses of `family` explaining `(c1, c2)` — zero proves
/// the pair is not `family`-equivalent.
///
/// # Errors
///
/// Same as [`enumerate_witnesses_sat`].
pub fn count_witnesses_sat(
    c1: &Circuit,
    c2: &Circuit,
    family: WitnessFamily,
) -> Result<u64, MatchError> {
    Ok(enumerate_witnesses_sat(c1, c2, family)?.count())
}

/// The incremental assumption sweep over every candidate of the family,
/// on a caller-owned solver — the serving layer passes its per-shard
/// cached solver here so learned clauses persist *across jobs*, not just
/// across candidates. `budget` bounds each per-candidate solve
/// (decisions + conflicts); exhausting it aborts the enumeration with
/// [`MatchError::Inconclusive`] rather than returning a wrong count.
///
/// # Errors
///
/// [`MatchError::Inconclusive`] on budget exhaustion, plus candidate
/// encoding errors.
pub fn sweep_family(
    solver: &mut CdclSolver,
    miter: &FamilyMiter,
    budget: Option<usize>,
) -> Result<WitnessEnumeration, MatchError> {
    solver.set_budget(budget);
    sweep_candidates(miter, |assumptions| {
        solver.solve_under_budgeted(assumptions)
    })
}

/// The DPLL counterpart of [`sweep_family`]: a stateless per-candidate
/// sweep under assumptions with the same per-solve `budget` semantics
/// (exhaustion aborts with [`MatchError::Inconclusive`] rather than
/// returning a wrong count) — the semantics-compatible fallback keeping
/// [`SolverBackend`] interchangeable in the serving layer.
///
/// # Errors
///
/// [`MatchError::Inconclusive`] on budget exhaustion, plus candidate
/// encoding errors.
pub fn sweep_family_dpll(
    miter: &FamilyMiter,
    budget: Option<usize>,
) -> Result<WitnessEnumeration, MatchError> {
    let mut solver = Solver::new(&miter.cnf).with_branch_hint(miter.input_hint());
    if let Some(b) = budget {
        solver = solver.with_budget(b);
    }
    sweep_candidates(miter, |assumptions| {
        solver.solve_under_budgeted(assumptions)
    })
}

/// The shared sweep loop: one budgeted solve-under-assumptions per
/// candidate, whichever engine answers. UNSAT collects the candidate as
/// a witness; `Unknown` aborts the enumeration (a partial count would be
/// wrong, not merely incomplete).
fn sweep_candidates(
    miter: &FamilyMiter,
    mut solve: impl FnMut(&[Lit]) -> revmatch_sat::BudgetedAssumedSolve,
) -> Result<WitnessEnumeration, MatchError> {
    let candidates = miter.family.candidates(miter.width)?;
    let mut witnesses = Vec::new();
    let mut solves = 0u64;
    for candidate in &candidates {
        let assumptions = miter.assumptions(candidate)?;
        solves += 1;
        match solve(&assumptions) {
            revmatch_sat::BudgetedAssumedSolve::Unsat { .. } => witnesses.push(candidate.clone()),
            revmatch_sat::BudgetedAssumedSolve::Sat(_) => {}
            revmatch_sat::BudgetedAssumedSolve::Unknown => return Err(MatchError::Inconclusive),
        }
    }
    Ok(WitnessEnumeration {
        witnesses,
        candidates: candidates.len() as u64,
        solves,
    })
}

/// Blocking-clause enumeration: solve with free selectors, block each
/// model's selector assignment, finish on UNSAT.
fn enumerate_blocking(
    miter: &FamilyMiter,
    backend: SolverBackend,
    candidates: Vec<MatchWitness>,
) -> Result<WitnessEnumeration, MatchError> {
    let mut blocked: HashSet<u128> = HashSet::new();
    let mut solves = 0u64;
    match backend {
        SolverBackend::Cdcl => {
            let mut solver = CdclSolver::new(&miter.cnf).with_branch_hint(miter.input_hint());
            loop {
                solves += 1;
                match solver.solve() {
                    revmatch_sat::Solve::Sat(model) => {
                        blocked.insert(miter.selector_code_of_model(&model));
                        solver.add_clause(&miter.blocking_clause(&model));
                    }
                    revmatch_sat::Solve::Unsat => break,
                }
            }
        }
        SolverBackend::Dpll => {
            let mut cnf = miter.cnf.clone();
            loop {
                solves += 1;
                match Solver::new(&cnf)
                    .with_branch_hint(miter.input_hint())
                    .solve()
                {
                    revmatch_sat::Solve::Sat(model) => {
                        blocked.insert(miter.selector_code_of_model(&model));
                        cnf.add_clause(Clause::new(miter.blocking_clause(&model)));
                    }
                    revmatch_sat::Solve::Unsat => break,
                }
            }
        }
    }
    let total = candidates.len() as u64;
    let witnesses = candidates
        .into_iter()
        .filter(|c| {
            let code = miter
                .selector_code_of(c)
                .expect("candidates come from the family");
            !blocked.contains(&code)
        })
        .collect();
    Ok(WitnessEnumeration {
        witnesses,
        candidates: total,
        solves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promise::random_instance;
    use crate::verify::{check_witness, VerifyMode};
    use rand::SeedableRng;
    use revmatch_circuit::DenseTable;

    /// Reference counter: a dense-table truth-table sweep over every
    /// candidate witness — `2^n` table lookups per candidate, no SAT.
    fn dense_table_count(c1: &Circuit, c2: &Circuit, family: WitnessFamily) -> u64 {
        let t1 = DenseTable::compile(c1).expect("width under the dense cap");
        let t2 = DenseTable::compile(c2).expect("width under the dense cap");
        let n = c1.width();
        family
            .candidates(n)
            .expect("test widths under the cap")
            .iter()
            .filter(|w| (0..1u64 << n).all(|x| t1.apply(x) == w.predict(x, |v| t2.apply(v))))
            .count() as u64
    }

    #[test]
    fn family_maps_cover_their_classes() {
        for family in WitnessFamily::ALL {
            assert_eq!(WitnessFamily::of(family.equivalence()), Some(family));
            let parsed: WitnessFamily = family.as_str().parse().unwrap();
            assert_eq!(parsed, family);
        }
        assert_eq!(WitnessFamily::of(Equivalence::new(Side::Np, Side::I)), None);
        assert!("negation".parse::<WitnessFamily>().is_err());
    }

    #[test]
    fn candidate_counts_match_generated_lists() {
        for family in WitnessFamily::ALL {
            for width in 1..=3 {
                let listed = family.candidates(width).unwrap().len() as u64;
                assert_eq!(listed, family.candidate_count(width), "{family} w{width}");
            }
        }
        assert!(matches!(
            WitnessFamily::BothNegations.candidates(12),
            Err(MatchError::EnumerationTooWide { .. })
        ));
    }

    #[test]
    fn planted_witness_is_always_enumerated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for family in WitnessFamily::ALL {
            let inst = random_instance(family.equivalence(), 4, &mut rng);
            let found = enumerate_witnesses_sat(&inst.c1, &inst.c2, family).unwrap();
            assert!(found.count() >= 1, "{family}: planted witness missed");
            assert!(
                found.witnesses.contains(&inst.witness),
                "{family}: planted witness not in the enumerated set"
            );
            // Every enumerated witness verifies functionally.
            for w in &found.witnesses {
                assert!(
                    check_witness(&inst.c1, &inst.c2, w, VerifyMode::Exhaustive, &mut rng).unwrap(),
                    "{family}: bogus enumerated witness {w}"
                );
            }
        }
    }

    /// The brute-force cross-check satellite: enumeration counts at
    /// widths ≤ 6 match a `DenseTable` truth-table sweep over all
    /// candidate witnesses, for each supported equivalence class.
    #[test]
    fn counts_match_dense_table_sweep() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for family in WitnessFamily::ALL {
            // Keep the 4^n/n! families at moderate width; push the
            // single-mask families to 6.
            let widths: &[usize] = match family {
                WitnessFamily::InputNegation | WitnessFamily::OutputNegation => &[3, 6],
                _ => &[3, 4],
            };
            for &w in widths {
                // A planted pair (count ≥ 1) and an unrelated pair
                // (usually count 0).
                let planted = random_instance(family.equivalence(), w, &mut rng);
                let unrelated = (
                    revmatch_circuit::random_function_circuit(w, &mut rng),
                    revmatch_circuit::random_function_circuit(w, &mut rng),
                );
                for (c1, c2) in [(&planted.c1, &planted.c2), (&unrelated.0, &unrelated.1)] {
                    let reference = dense_table_count(c1, c2, family);
                    let sat = count_witnesses_sat(c1, c2, family).unwrap();
                    assert_eq!(sat, reference, "{family} w{w}: SAT vs dense-table count");
                }
            }
        }
    }

    /// Both strategies and both backends enumerate the same witness set.
    #[test]
    fn strategies_and_backends_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for family in [
            WitnessFamily::InputNegation,
            WitnessFamily::OutputNegation,
            WitnessFamily::BothNegations,
            WitnessFamily::InputPermutation,
        ] {
            let inst = random_instance(family.equivalence(), 3, &mut rng);
            let mut outcomes = Vec::new();
            for backend in SolverBackend::ALL {
                for strategy in [
                    EnumerationStrategy::AssumptionSweep,
                    EnumerationStrategy::BlockingClauses,
                ] {
                    let found =
                        enumerate_witnesses_sat_with(&inst.c1, &inst.c2, family, backend, strategy)
                            .unwrap();
                    outcomes.push((backend, strategy, found));
                }
            }
            let reference = &outcomes[0].2;
            for (backend, strategy, found) in &outcomes[1..] {
                assert_eq!(
                    found.witnesses, reference.witnesses,
                    "{family}: {backend}/{strategy:?} disagrees"
                );
                assert_eq!(found.candidates, reference.candidates);
            }
        }
    }

    #[test]
    fn blocking_mode_solves_less_when_witnesses_dominate() {
        // C(x) = x ⊕ 01 against itself under N-N: every input mask is
        // undone by the matching output mask, so ALL 2^n input masks are
        // witnesses — blocking mode proves the lot in few solves while
        // the sweep pays one UNSAT per witness.
        let c = NegationMask::new(0b01, 2).unwrap().to_circuit();
        let sweep = enumerate_witnesses_sat_with(
            &c,
            &c,
            WitnessFamily::BothNegations,
            SolverBackend::Cdcl,
            EnumerationStrategy::AssumptionSweep,
        )
        .unwrap();
        let blocking = enumerate_witnesses_sat_with(
            &c,
            &c,
            WitnessFamily::BothNegations,
            SolverBackend::Cdcl,
            EnumerationStrategy::BlockingClauses,
        )
        .unwrap();
        assert_eq!(sweep.count(), 4, "one valid output mask per input mask");
        assert_eq!(blocking.witnesses, sweep.witnesses);
        assert!(
            blocking.solves < sweep.solves,
            "blocking ({}) must beat the sweep ({}) on witness-dense families",
            blocking.solves,
            sweep.solves
        );
        // And the count agrees with the existing truth-table counter.
        let brute =
            crate::matchers::count_witnesses(&c, &c, Equivalence::new(Side::N, Side::N)).unwrap();
        assert_eq!(sweep.count(), brute);
    }

    #[test]
    fn family_miter_rejects_bad_inputs() {
        let a = Circuit::new(3);
        let b = Circuit::new(4);
        assert!(matches!(
            FamilyMiter::build(&a, &b, WitnessFamily::InputNegation),
            Err(MatchError::WidthMismatch { .. })
        ));
        // Encoding caps are wider than enumeration caps: a width-9
        // BothNegations miter encodes (explicit candidate sweeps work)…
        let wide = Circuit::new(9);
        assert!(FamilyMiter::build(&wide, &wide, WitnessFamily::BothNegations).is_ok());
        // …but full-space enumeration at that width is rejected, and the
        // permutation encoding caps at the selector-code packing limit.
        assert!(matches!(
            enumerate_witnesses_sat(&wide, &wide, WitnessFamily::BothNegations),
            Err(MatchError::EnumerationTooWide { .. })
        ));
        let very_wide = Circuit::new(12);
        assert!(matches!(
            FamilyMiter::build(&very_wide, &very_wide, WitnessFamily::InputPermutation),
            Err(MatchError::EnumerationTooWide { .. })
        ));
        let miter = FamilyMiter::build(&a, &a, WitnessFamily::InputNegation).unwrap();
        let perm_candidate =
            MatchWitness::input_permutation(LinePermutation::new(vec![1, 0, 2]).unwrap());
        assert!(matches!(
            miter.assumptions(&perm_candidate),
            Err(MatchError::FamilyMismatch)
        ));
        let narrow = MatchWitness::identity(2);
        assert!(matches!(
            miter.assumptions(&narrow),
            Err(MatchError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn shared_solver_sweep_is_reusable_across_calls() {
        // The serving pattern: one solver, repeated sweeps of the same
        // family — the second sweep must answer identically (and not
        // spend more conflicts than the first).
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let inst = random_instance(Equivalence::new(Side::N, Side::I), 5, &mut rng);
        let miter = FamilyMiter::build(&inst.c1, &inst.c2, WitnessFamily::InputNegation).unwrap();
        let mut solver = CdclSolver::new(&miter.cnf).with_branch_hint(miter.input_hint());
        let cold = sweep_family(&mut solver, &miter, None).unwrap();
        assert!(cold.witnesses.contains(&inst.witness));
        let warm = sweep_family(&mut solver, &miter, None).unwrap();
        assert_eq!(warm.witnesses, cold.witnesses);
        // A zero budget aborts with Inconclusive instead of guessing —
        // unless the learned state answers every candidate by propagation.
        let mut fresh = CdclSolver::new(&miter.cnf).with_branch_hint(miter.input_hint());
        match sweep_family(&mut fresh, &miter, Some(0)) {
            Err(MatchError::Inconclusive) => {}
            Ok(out) => assert_eq!(out.witnesses, cold.witnesses),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
