//! Equivalence identification: the non-promise workflow of §3.
//!
//! Problem 1 is a promise problem, but the paper observes that a promise
//! solver plus one round of equivalence checking handles the general case:
//! *try* the conditions a matcher proposes, *validate* them, and walk on.
//! [`identify_equivalence`] packages that loop: given two white-box
//! circuits, it walks the Fig. 1 lattice bottom-up (cheapest classes
//! first), runs the corresponding tractable matcher with derived inverses,
//! validates every candidate witness, and returns the **minimal**
//! equivalence type that explains the pair.
//!
//! UNIQUE-SAT-hard classes are reached only through the brute-force
//! matcher and only at widths where it is feasible — exactly the situation
//! Theorems 2–3 say one cannot improve in general.

use rand::Rng;

use crate::equivalence::Equivalence;
use crate::error::MatchError;
use crate::lattice::classify;
use crate::matchers::{brute_force_match, solve_promise, MatcherConfig, ProblemOracles};
use crate::oracle::Oracle;
use crate::verify::{check_witness, VerifyMode};
use crate::witness::MatchWitness;
use revmatch_circuit::Circuit;

/// Result of an identification run, with full walk accounting.
#[derive(Debug, Clone)]
pub struct Identification {
    /// The minimal equivalence type under which the pair matched.
    pub equivalence: Equivalence,
    /// A validated witness for that type.
    pub witness: MatchWitness,
    /// **Total** oracle queries spent across the whole lattice walk —
    /// every attempted class, not just the winning matcher. This is the
    /// number a serving layer must charge the job.
    pub queries: u64,
    /// Oracle queries spent by the winning class's matcher alone.
    pub winner_queries: u64,
    /// Equivalence classes actually attempted (tractable matchers plus
    /// brute-force passes), including the winner.
    pub classes_tried: usize,
}

/// Options for [`identify_equivalence`].
#[derive(Debug, Clone)]
pub struct IdentifyOptions {
    /// Matcher tuning (ε, swap-test rounds).
    pub config: MatcherConfig,
    /// Whether the UNIQUE-SAT-hard classes may be attempted by brute
    /// force when the width allows it.
    pub allow_brute_force: bool,
    /// Verification mode for candidate witnesses.
    pub verify: VerifyMode,
}

impl Default for IdentifyOptions {
    fn default() -> Self {
        Self {
            config: MatcherConfig::with_epsilon(1e-9),
            allow_brute_force: true,
            verify: VerifyMode::Exhaustive,
        }
    }
}

/// Finds the minimal X-Y equivalence relating `c1` and `c2`, if any.
///
/// Classes are tried in order of increasing transform-space size, so the
/// returned type is minimal (no strictly weaker class explains the pair).
/// Tractable classes use the Table 1 matchers (inverses are derived from
/// the white boxes, per §3); hard classes fall back to brute force when
/// permitted and feasible.
///
/// Returns `Ok(None)` when no class explains the pair — including the
/// case where only a hard class might but brute force was not allowed.
///
/// # Errors
///
/// Returns [`MatchError::WidthMismatch`] if the circuits disagree on
/// width; matcher-internal errors are treated as "this class does not
/// match" and skipped.
///
/// # Examples
///
/// ```
/// use revmatch::{identify_equivalence, Equivalence, IdentifyOptions, Side};
/// use revmatch_circuit::{Circuit, Gate};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let c2 = Circuit::from_gates(3, [Gate::toffoli(0, 1, 2)])?;
/// let c1 = Circuit::from_gates(3, [Gate::not(0)])?.then(&c2)?;
/// let found = identify_equivalence(&c1, &c2, &IdentifyOptions::default(), &mut rng)?
///     .expect("pair is N-I equivalent");
/// assert_eq!(found.equivalence, Equivalence::new(Side::N, Side::I));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn identify_equivalence(
    c1: &Circuit,
    c2: &Circuit,
    options: &IdentifyOptions,
    rng: &mut impl Rng,
) -> Result<Option<Identification>, MatchError> {
    let o1 = Oracle::new(c1.clone());
    let o2 = Oracle::new(c2.clone());
    let o1_inv = o1.inverse_oracle();
    let o2_inv = o2.inverse_oracle();
    identify_equivalence_with_oracles(c1, c2, &o1, &o2, &o1_inv, &o2_inv, options, rng)
}

/// [`identify_equivalence`] over caller-supplied oracles for the white
/// boxes and their inverses — the serving layer passes precompiled
/// (dense-table-cached) oracles here so repeated identification jobs
/// skip the compile sweep. The oracles must compute `c1`, `c2` and their
/// inverses; query accounting in the returned [`Identification`] is
/// relative to the counters at entry.
///
/// # Errors
///
/// Same as [`identify_equivalence`].
#[allow(clippy::too_many_arguments)] // the four oracles mirror ProblemOracles
pub fn identify_equivalence_with_oracles(
    c1: &Circuit,
    c2: &Circuit,
    o1: &Oracle,
    o2: &Oracle,
    o1_inv: &Oracle,
    o2_inv: &Oracle,
    options: &IdentifyOptions,
    rng: &mut impl Rng,
) -> Result<Option<Identification>, MatchError> {
    let n = c1.width();
    if n != c2.width() {
        return Err(MatchError::WidthMismatch {
            left: n,
            right: c2.width(),
        });
    }
    // Spectral prefilter (white-box, no oracle queries): a Walsh-signature
    // mismatch refutes every X-Y class at once.
    if n <= revmatch_circuit::TruthTable::MAX_WIDTH
        && !revmatch_circuit::signatures_compatible(c1, c2)?
    {
        return Ok(None);
    }
    let oracles = ProblemOracles::with_inverses(o1, o2, o1_inv, o2_inv);
    let initial_queries = oracles.total_queries();

    // Cheapest classes first; ties broken deterministically.
    let mut classes: Vec<Equivalence> = Equivalence::all().collect();
    classes.sort_by_key(|e| (e.search_space(n.min(16)), e.to_string()));

    let mut classes_tried = 0usize;
    for e in classes {
        let before = oracles.total_queries();
        let candidate = if classify(e).is_tractable() {
            classes_tried += 1;
            solve_promise(e, &oracles, &options.config, rng).ok()
        } else if options.allow_brute_force && n <= crate::matchers::BRUTE_FORCE_MAX_WIDTH {
            classes_tried += 1;
            brute_force_match(c1, c2, e)?
        } else {
            None
        };
        if let Some(witness) = candidate {
            if witness.conforms_to(e) && check_witness(c1, c2, &witness, options.verify, rng)? {
                let total = oracles.total_queries();
                return Ok(Some(Identification {
                    equivalence: e,
                    witness,
                    queries: total - initial_queries,
                    winner_queries: total - before,
                    classes_tried,
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::Side;
    use crate::promise::random_instance;
    use rand::SeedableRng;

    #[test]
    fn identifies_minimal_class_for_planted_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for e in Equivalence::all() {
            let inst = random_instance(e, 4, &mut rng);
            let found =
                identify_equivalence(&inst.c1, &inst.c2, &IdentifyOptions::default(), &mut rng)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{e}: no class identified"));
            // The found class must be minimal: it is subsumed by the
            // planted class OR incomparable-but-valid (both witnessed).
            assert!(
                found.witness.conforms_to(found.equivalence),
                "{e} -> {}",
                found.equivalence
            );
            assert!(
                check_witness(
                    &inst.c1,
                    &inst.c2,
                    &found.witness,
                    VerifyMode::Exhaustive,
                    &mut rng
                )
                .unwrap(),
                "{e} -> {} witness invalid",
                found.equivalence
            );
            // Minimality against the planted witness: the identified
            // class's search space is never larger than the planted
            // witness's own minimal class.
            let planted_min = inst.witness.minimal_equivalence();
            assert!(
                found.equivalence.search_space(4) <= planted_min.search_space(4),
                "{e}: identified {} but planted minimal is {planted_min}",
                found.equivalence
            );
        }
    }

    #[test]
    fn walk_accounting_covers_every_attempted_class() {
        // An NP-I pair makes the walk fail through several cheaper
        // classes first: the total must strictly exceed the winner's own
        // queries, and both must land on the oracle counters exactly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let inst = random_instance(Equivalence::new(Side::Np, Side::I), 4, &mut rng);
        let o1 = crate::Oracle::new(inst.c1.clone());
        let o2 = crate::Oracle::new(inst.c2.clone());
        let o1_inv = o1.inverse_oracle();
        let o2_inv = o2.inverse_oracle();
        let found = identify_equivalence_with_oracles(
            &inst.c1,
            &inst.c2,
            &o1,
            &o2,
            &o1_inv,
            &o2_inv,
            &IdentifyOptions::default(),
            &mut rng,
        )
        .unwrap()
        .expect("planted pair identifies");
        let on_counters = o1.queries() + o2.queries() + o1_inv.queries() + o2_inv.queries();
        assert_eq!(found.queries, on_counters, "walk total = counter delta");
        assert!(found.winner_queries > 0);
        assert!(
            found.queries > found.winner_queries,
            "failed classes before the winner must be charged \
             (total {}, winner {})",
            found.queries,
            found.winner_queries
        );
        assert!(found.classes_tried > 1, "cheaper classes were attempted");
    }

    #[test]
    fn identity_pair_identifies_as_i_i() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let c = revmatch_circuit::random_function_circuit(4, &mut rng);
        let found = identify_equivalence(&c, &c, &IdentifyOptions::default(), &mut rng)
            .unwrap()
            .unwrap();
        assert_eq!(found.equivalence, Equivalence::new(Side::I, Side::I));
    }

    #[test]
    fn unrelated_pair_identifies_as_nothing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = revmatch_circuit::random_function_circuit(4, &mut rng);
        let b = revmatch_circuit::random_function_circuit(4, &mut rng);
        let found = identify_equivalence(&a, &b, &IdentifyOptions::default(), &mut rng).unwrap();
        assert!(found.is_none(), "random pair matched: {found:?}");
    }

    #[test]
    fn hard_classes_skipped_without_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        // An N-N instance whose ν masks are nontrivial on both sides.
        let inst = loop {
            let inst = random_instance(Equivalence::new(Side::N, Side::N), 4, &mut rng);
            if !inst.witness.nu_x().is_identity() && !inst.witness.nu_y().is_identity() {
                break inst;
            }
        };
        let mut options = IdentifyOptions {
            allow_brute_force: false,
            ..IdentifyOptions::default()
        };
        let without = identify_equivalence(&inst.c1, &inst.c2, &options, &mut rng).unwrap();
        options.allow_brute_force = true;
        let with = identify_equivalence(&inst.c1, &inst.c2, &options, &mut rng).unwrap();
        // With brute force the pair is explained; without, usually not
        // (no tractable class covers generic N-N pairs).
        assert!(with.is_some());
        if let Some(found) = without {
            // If something tractable explained it, it must verify.
            assert!(check_witness(
                &inst.c1,
                &inst.c2,
                &found.witness,
                VerifyMode::Exhaustive,
                &mut rng
            )
            .unwrap());
        }
    }

    #[test]
    fn width_mismatch_is_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        assert!(identify_equivalence(&a, &b, &IdentifyOptions::default(), &mut rng).is_err());
    }
}
