//! Witness verification: the single-round equivalence check.
//!
//! The paper's §3 observes that solving the *promise* problem suffices for
//! the general one: with candidate conditions in hand, one round of
//! equivalence checking validates them. This module is that round.

use rand::Rng;
use revmatch_circuit::{width_mask, Circuit};

use crate::error::MatchError;
use crate::witness::MatchWitness;

/// How thoroughly to check a witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Check all `2^n` inputs (exact; `n <= 24`).
    Exhaustive,
    /// Check this many uniformly random inputs (Monte-Carlo; no false
    /// rejections, false acceptance probability `(1 - d)^k` for functions
    /// differing on a fraction `d` of inputs).
    Sampled(usize),
}

/// Checks whether `C1 = output ∘ C2 ∘ input` for the witness.
///
/// # Errors
///
/// Returns [`MatchError::WidthMismatch`] if widths are inconsistent.
///
/// # Examples
///
/// ```
/// use revmatch::{check_witness, MatchWitness, VerifyMode};
/// use revmatch_circuit::{Circuit, Gate};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let c = Circuit::from_gates(2, [Gate::cnot(0, 1)])?;
/// let w = MatchWitness::identity(2);
/// assert!(check_witness(&c, &c, &w, VerifyMode::Exhaustive, &mut rng)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_witness(
    c1: &Circuit,
    c2: &Circuit,
    witness: &MatchWitness,
    mode: VerifyMode,
    rng: &mut impl Rng,
) -> Result<bool, MatchError> {
    if c1.width() != c2.width() {
        return Err(MatchError::WidthMismatch {
            left: c1.width(),
            right: c2.width(),
        });
    }
    if c1.width() != witness.width() {
        return Err(MatchError::WidthMismatch {
            left: c1.width(),
            right: witness.width(),
        });
    }
    let n = c1.width();
    let inputs: Vec<u64> = match mode {
        VerifyMode::Exhaustive => {
            assert!(n <= 24, "exhaustive verification limited to 24 lines");
            (0..1u64 << n).collect()
        }
        VerifyMode::Sampled(k) => {
            let mask = width_mask(n);
            (0..k).map(|_| rng.gen::<u64>() & mask).collect()
        }
    };
    // Both sides run through the bit-sliced batch evaluator: C1 directly,
    // C2 inside the witness sandwich (input transform, C2, output
    // transform are each cheap table/mask operations around the batch).
    let lhs = c1.apply_batch(&inputs);
    let transformed: Vec<u64> = inputs.iter().map(|&x| witness.input.apply(x)).collect();
    let mid = c2.apply_batch(&transformed);
    Ok(lhs
        .iter()
        .zip(&mid)
        .all(|(&l, &m)| l == witness.output.apply(m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{Equivalence, Side};
    use crate::promise::random_instance;
    use rand::SeedableRng;
    use revmatch_circuit::{Gate, NegationMask, NpTransform};

    #[test]
    fn accepts_planted_witnesses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for e in Equivalence::all() {
            let inst = random_instance(e, 4, &mut rng);
            assert!(
                check_witness(
                    &inst.c1,
                    &inst.c2,
                    &inst.witness,
                    VerifyMode::Exhaustive,
                    &mut rng
                )
                .unwrap(),
                "planted witness rejected for {e}"
            );
        }
    }

    #[test]
    fn rejects_wrong_witness() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let c1 = Circuit::from_gates(3, [Gate::not(0)]).unwrap();
        let c2 = Circuit::new(3);
        // The correct witness negates line 0; the identity one is wrong.
        let w = MatchWitness::identity(3);
        assert!(!check_witness(&c1, &c2, &w, VerifyMode::Exhaustive, &mut rng).unwrap());
        // The correct one passes.
        let right = MatchWitness::output_only(
            NpTransform::new(
                NegationMask::new(0b1, 3).unwrap(),
                revmatch_circuit::LinePermutation::identity(3),
            )
            .unwrap(),
        );
        assert!(check_witness(&c1, &c2, &right, VerifyMode::Exhaustive, &mut rng).unwrap());
    }

    #[test]
    fn sampled_mode_accepts_and_rejects() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let inst = random_instance(Equivalence::new(Side::Np, Side::Np), 6, &mut rng);
        assert!(check_witness(
            &inst.c1,
            &inst.c2,
            &inst.witness,
            VerifyMode::Sampled(64),
            &mut rng
        )
        .unwrap());
        // A fresh random witness almost surely fails on 64 samples.
        let wrong = MatchWitness {
            input: NpTransform::random(6, &mut rng),
            output: NpTransform::random(6, &mut rng),
        };
        let ok = check_witness(
            &inst.c1,
            &inst.c2,
            &wrong,
            VerifyMode::Sampled(64),
            &mut rng,
        )
        .unwrap();
        assert!(!ok, "random witness accepted (astronomically unlikely)");
    }

    #[test]
    fn width_mismatch_is_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let c2 = Circuit::new(2);
        let c3 = Circuit::new(3);
        let w = MatchWitness::identity(2);
        assert!(check_witness(&c3, &c2, &w, VerifyMode::Exhaustive, &mut rng).is_err());
        assert!(check_witness(
            &c2,
            &c2,
            &MatchWitness::identity(3),
            VerifyMode::Exhaustive,
            &mut rng
        )
        .is_err());
    }
}
