//! Promised-matchable instance generation.
//!
//! Problem 1 takes circuits *promised* to be X-Y equivalent. These
//! generators produce such pairs together with the planted witness: draw a
//! base circuit `C2` (a uniformly random reversible function, synthesized
//! to gates), draw side transforms allowed by the equivalence type, and
//! build `C1 = T_Y ∘ C2 ∘ T_X` as a real gate-level circuit.
//!
//! Note the planted witness need not be the *unique* witness (e.g. a `C2`
//! with symmetries admits several); verification must therefore compare
//! functions, not witnesses.

use rand::Rng;
use revmatch_circuit::{
    random_function_circuit, Circuit, LinePermutation, NegationMask, NpTransform,
};

use crate::equivalence::{Equivalence, Side};
use crate::witness::MatchWitness;

/// A promised X-Y-equivalent pair with its planted witness.
#[derive(Debug, Clone)]
pub struct PromiseInstance {
    /// The transformed circuit (`T_Y ∘ C2 ∘ T_X`).
    pub c1: Circuit,
    /// The base circuit.
    pub c2: Circuit,
    /// The planted witness.
    pub witness: MatchWitness,
    /// The equivalence the pair is promised to satisfy.
    pub equivalence: Equivalence,
}

/// Draws a random transform from the class allowed by `side`.
pub fn random_side_transform(side: Side, width: usize, rng: &mut impl Rng) -> NpTransform {
    let nu = match side {
        Side::N | Side::Np => NegationMask::random(width, rng),
        Side::I | Side::P => NegationMask::identity(width),
    };
    let pi = match side {
        Side::P | Side::Np => LinePermutation::random(width, rng),
        Side::I | Side::N => LinePermutation::identity(width),
    };
    NpTransform::new(nu, pi).expect("widths equal by construction")
}

/// Generates a promised instance around a given base circuit.
///
/// # Panics
///
/// Panics if `c2.width() == 0`.
pub fn random_instance_from(
    c2: Circuit,
    equivalence: Equivalence,
    rng: &mut impl Rng,
) -> PromiseInstance {
    let width = c2.width();
    assert!(width >= 1);
    let input = random_side_transform(equivalence.x, width, rng);
    let output = random_side_transform(equivalence.y, width, rng);
    let witness = MatchWitness::new(input, output).expect("same width");
    let c1 = witness.surround(&c2).expect("same width");
    PromiseInstance {
        c1,
        c2,
        witness,
        equivalence,
    }
}

/// Generates a promised instance over a uniformly random base function.
///
/// # Panics
///
/// Panics if `width == 0` or `width > TruthTable::MAX_WIDTH` (24).
///
/// # Examples
///
/// ```
/// use revmatch::{random_instance, Equivalence, Side, VerifyMode, check_witness};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let inst = random_instance(Equivalence::new(Side::N, Side::I), 4, &mut rng);
/// assert!(check_witness(&inst.c1, &inst.c2, &inst.witness,
///                       VerifyMode::Exhaustive, &mut rng)?);
/// # Ok::<(), revmatch::MatchError>(())
/// ```
pub fn random_instance(
    equivalence: Equivalence,
    width: usize,
    rng: &mut impl Rng,
) -> PromiseInstance {
    let c2 = random_function_circuit(width, rng);
    random_instance_from(c2, equivalence, rng)
}

/// Generates a *wide* promised instance (up to 64 lines) whose base circuit
/// is a random MCT cascade rather than a synthesized uniform function.
///
/// Useful for query-count experiments at widths where truth tables are not
/// materializable.
pub fn random_wide_instance(
    equivalence: Equivalence,
    width: usize,
    gate_count: usize,
    rng: &mut impl Rng,
) -> PromiseInstance {
    let spec = revmatch_circuit::RandomCircuitSpec {
        width,
        gate_count,
        max_controls: 3,
        allow_negative_controls: true,
    };
    let c2 = revmatch_circuit::random_circuit(&spec, rng);
    random_instance_from(c2, equivalence, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn witness_conforms_to_requested_type() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for e in Equivalence::all() {
            for _ in 0..5 {
                let inst = random_instance(e, 4, &mut rng);
                assert!(
                    inst.witness.conforms_to(e),
                    "witness for {e} escapes its class"
                );
                assert_eq!(inst.equivalence, e);
            }
        }
    }

    #[test]
    fn instance_is_functionally_equivalent_under_witness() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for e in Equivalence::all() {
            let inst = random_instance(e, 4, &mut rng);
            for x in 0..16u64 {
                assert_eq!(
                    inst.c1.apply(x),
                    inst.witness.predict(x, |v| inst.c2.apply(v)),
                    "{e}"
                );
            }
        }
    }

    #[test]
    fn identity_type_gives_equal_functions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let inst = random_instance(Equivalence::new(Side::I, Side::I), 4, &mut rng);
        assert!(inst.c1.functionally_eq(&inst.c2));
    }

    #[test]
    fn wide_instances_build() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let inst = random_wide_instance(Equivalence::new(Side::N, Side::I), 32, 64, &mut rng);
        assert_eq!(inst.c1.width(), 32);
        // Spot-check the witness on random points.
        for _ in 0..32 {
            let x: u64 = rand::Rng::gen::<u64>(&mut rng) & revmatch_circuit::width_mask(32);
            assert_eq!(
                inst.c1.apply(x),
                inst.witness.predict(x, |v| inst.c2.apply(v))
            );
        }
    }

    #[test]
    fn side_transform_respects_class() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert!(random_side_transform(Side::I, 5, &mut rng).is_identity());
            assert!(random_side_transform(Side::N, 5, &mut rng)
                .permutation()
                .is_identity());
            assert!(random_side_transform(Side::P, 5, &mut rng)
                .negation()
                .is_identity());
        }
    }
}
