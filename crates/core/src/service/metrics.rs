//! Lock-free serving metrics with a Prometheus-style text export.
//!
//! [`Metrics`] is a fixed registry for the serving layer: monotonic
//! counters for job and query totals, one queue-depth gauge per shard, and
//! two histograms (job latency, intake depth at submit). Everything is
//! plain atomics — recording a sample is a handful of `fetch_add`s, cheap
//! enough to leave on in production. The one exception is the
//! per-registry-entry counter map, whose label set is dynamic (any
//! registered matcher name): it takes a mutex once per completed job,
//! far off any hot path. [`Metrics::render`] serializes
//! the whole registry in the Prometheus text exposition format (`# HELP`
//! / `# TYPE` headers, `_bucket{le="…"}` cumulative histogram rows), so
//! the output can be scraped or diffed as-is.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use revmatch_quantum::QuantumBackend;

use crate::engine::JobKind;

/// Number of [`JobKind`]s — sizes the dense per-kind metric arrays.
const KINDS: usize = JobKind::ALL.len();

/// Number of [`QuantumBackend`]s — sizes the per-backend job counters.
const QBACKENDS: usize = QuantumBackend::ALL.len();

/// A fixed-bucket cumulative histogram over `u64` samples.
///
/// Buckets are defined by inclusive upper bounds; a sample lands in every
/// bucket whose bound is ≥ the sample (cumulative, as Prometheus expects).
/// `sum`/`count` come for free with the observations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
    /// Smallest sample observed; `u64::MAX` while empty so the first
    /// `fetch_min` wins unconditionally.
    min: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds (must be
    /// ascending).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        let buckets = bounds.iter().map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The largest sample observed (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The smallest sample observed (0 when empty).
    pub fn min(&self) -> u64 {
        let min = self.min.load(Ordering::Relaxed);
        if min == u64::MAX {
            0
        } else {
            min
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0 <= q <= 1`), or `None` when the histogram is empty. `q = 0.0`
    /// reports the **observed minimum** — the rank used to be clamped to
    /// 1, which silently turned "minimum" into "first occupied bucket's
    /// upper bound". Samples past the last bound report the **observed
    /// maximum** — the old `u64::MAX` sentinel forced every consumer to
    /// special-case the edge and printed as garbage when one forgot.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min());
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                // The bucket bound can overshoot the true max when every
                // overflow-free sample sits low in its bucket.
                return Some((*bound).min(self.max()));
            }
        }
        Some(self.max())
    }

    /// The requested quantile upper bounds in one pass — `None` when the
    /// histogram is empty, so callers print `—` instead of fake zeros.
    ///
    /// ```
    /// use revmatch::Histogram;
    /// let h = Histogram::new(vec![10, 100]);
    /// assert_eq!(h.summary(&[0.5, 0.99]), None);
    /// for v in [4, 5, 6, 250] { h.observe(v); }
    /// let s = h.summary(&[0.5, 0.99]).unwrap();
    /// assert_eq!(s, vec![10, 250]); // p50 in-bucket, p99 at observed max
    /// ```
    pub fn summary(&self, quantiles: &[f64]) -> Option<Vec<u64>> {
        if self.count() == 0 {
            return None;
        }
        Some(
            quantiles
                .iter()
                .map(|&q| self.quantile_upper_bound(q).expect("count checked"))
                .collect(),
        )
    }

    /// Renders the histogram as Prometheus text. `denom` converts the raw
    /// `u64` samples into the exported unit by division (e.g. `1e6` for
    /// µs → s; powers of ten divide cleanly, keeping `le` labels short).
    /// The header is emitted by the caller when several labeled series
    /// share one metric family.
    fn render(&self, out: &mut String, name: &str, help: &str, denom: f64) {
        use std::fmt::Write;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        self.render_series(out, name, "", denom);
    }

    /// Renders the bucket/sum/count rows with an optional extra label
    /// (e.g. `kind=\"promise\",`) spliced before `le`.
    fn render_series(&self, out: &mut String, name: &str, label: &str, denom: f64) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (bound, bucket) in self.bounds.iter().zip(&self.buckets) {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = *bound as f64 / denom;
            let _ = writeln!(out, "{name}_bucket{{{label}le=\"{le}\"}} {cumulative}");
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{label}le=\"+Inf\"}} {cumulative}");
        if label.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", self.sum() as f64 / denom);
            let _ = writeln!(out, "{name}_count {}", self.count());
        } else {
            let series = label.trim_end_matches(',');
            let _ = writeln!(out, "{name}_sum{{{series}}} {}", self.sum() as f64 / denom);
            let _ = writeln!(out, "{name}_count{{{series}}} {}", self.count());
        }
    }
}

/// Escapes a label *value* per the Prometheus text exposition format:
/// backslash, double-quote and newline must be written as `\\`, `\"` and
/// `\n` inside the quoted value, or the emitted series is unparseable.
/// Static label values in this registry are already clean; the dynamic
/// ones (registry entry names, dispatch-resolved kernel/backend/option
/// labels) pass through here on every render.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Latency bucket bounds in microseconds: 50 µs … ~52 s, doubling.
fn latency_bounds() -> Vec<u64> {
    (0..21).map(|i| 50u64 << i).collect()
}

/// Queue-depth bucket bounds: 0, 1, 2, 4, … 1024.
fn depth_bounds() -> Vec<u64> {
    std::iter::once(0)
        .chain((0..11).map(|i| 1u64 << i))
        .collect()
}

/// Table-compile bucket bounds in microseconds: 1 µs … ~1 s, doubling —
/// a width-12 compile lands in the single-digit-µs buckets, a width-20
/// one in the millisecond range.
fn compile_bounds() -> Vec<u64> {
    (0..21).map(|i| 1u64 << i).collect()
}

/// Metrics registry for one [`super::MatchService`].
///
/// All counters are monotonic totals since service start; gauges track the
/// live per-shard intake depth. See [`Metrics::render`] for the export.
#[derive(Debug)]
pub struct Metrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    /// Jobs shed by admission control under overload (never executed).
    admission_shed: AtomicU64,
    /// Jobs deferred (re-queued) by admission control under overload.
    admission_requeued: AtomicU64,
    /// Lane moves performed by the shard rebalancer.
    rebalance_moves: AtomicU64,
    /// Worker panics converted into `WorkerLost` reports.
    worker_lost: AtomicU64,
    queries: AtomicU64,
    sat_verified: AtomicU64,
    sat_unknown: AtomicU64,
    /// Glue (LBD ≤ 2) clauses held by the most recently sampled cached
    /// solver — a gauge, not a total: it tracks working-set quality.
    sat_glue_kept: AtomicU64,
    /// Learned-DB size of the most recently sampled cached solver.
    sat_learned_db: AtomicU64,
    /// XOR constraints extracted across all solver builds.
    sat_xors_extracted: AtomicU64,
    /// Microseconds spent in solver inprocessing passes.
    sat_inprocess_us: AtomicU64,
    table_cache_hits: AtomicU64,
    solver_cache_hits: AtomicU64,
    /// Family witnesses found across completed enumeration jobs.
    enumerated_witnesses: AtomicU64,
    /// Completions per [`JobKind`], indexed by `JobKind::index`.
    completed_by_kind: [AtomicU64; KINDS],
    /// Failures per [`JobKind`], indexed by `JobKind::index`.
    failed_by_kind: [AtomicU64; KINDS],
    /// Accept-to-completion latency per [`JobKind`].
    latency_by_kind: [Histogram; KINDS],
    /// Quantum-path jobs per simulation backend, indexed by
    /// `QuantumBackend::index`.
    quantum_by_backend: [AtomicU64; QBACKENDS],
    /// Completions per registry entry (keyed by the entry's stable
    /// [`crate::matchers::Matcher::name`]). The label set is dynamic, so
    /// this is the registry's one mutex — taken once per completed job
    /// that ran a named matcher, far off any hot path.
    entry_completions: Mutex<BTreeMap<&'static str, u64>>,
    shard_depth: Vec<AtomicU64>,
    /// Jobs executed per worker shard (by the shard that ran them, not
    /// the lane they were queued on).
    shard_jobs: Vec<AtomicU64>,
    /// Jobs a shard pulled from another shard's lane (steals performed).
    shard_steals: Vec<AtomicU64>,
    /// Jobs pulled *out of* a shard's lane by other shards (stolen-from).
    shard_stolen_from: Vec<AtomicU64>,
    /// Microseconds each shard spent executing jobs (dequeue → report).
    shard_busy_us: Vec<AtomicU64>,
    /// Microseconds each shard spent parked waiting for work.
    shard_idle_us: Vec<AtomicU64>,
    latency: Histogram,
    intake_depth: Histogram,
    /// Cold dense-table compile latency in worker oracle setup (cache
    /// misses only — hits never compile).
    table_compile: Histogram,
    /// Accept-to-dequeue wait (the queue_wait stage of every job).
    queue_wait: Histogram,
    /// Execute-stage latency per [`JobKind`] (the `execute_*` body
    /// alone, queue wait excluded).
    exec_by_kind: [Histogram; KINDS],
}

impl Metrics {
    /// A fresh registry for a service with `shards` worker shards.
    pub fn new(shards: usize) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            admission_shed: AtomicU64::new(0),
            admission_requeued: AtomicU64::new(0),
            rebalance_moves: AtomicU64::new(0),
            worker_lost: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            sat_verified: AtomicU64::new(0),
            sat_unknown: AtomicU64::new(0),
            sat_glue_kept: AtomicU64::new(0),
            sat_learned_db: AtomicU64::new(0),
            sat_xors_extracted: AtomicU64::new(0),
            sat_inprocess_us: AtomicU64::new(0),
            table_cache_hits: AtomicU64::new(0),
            solver_cache_hits: AtomicU64::new(0),
            enumerated_witnesses: AtomicU64::new(0),
            completed_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            failed_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_by_kind: std::array::from_fn(|_| Histogram::new(latency_bounds())),
            quantum_by_backend: std::array::from_fn(|_| AtomicU64::new(0)),
            entry_completions: Mutex::new(BTreeMap::new()),
            shard_depth: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            shard_jobs: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            shard_steals: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            shard_stolen_from: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            shard_busy_us: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            shard_idle_us: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency: Histogram::new(latency_bounds()),
            intake_depth: Histogram::new(depth_bounds()),
            table_compile: Histogram::new(compile_bounds()),
            queue_wait: Histogram::new(latency_bounds()),
            exec_by_kind: std::array::from_fn(|_| Histogram::new(latency_bounds())),
        }
    }

    /// Counts an accepted job. Called from the queue's `on_accept` hook,
    /// i.e. **under the lane lock with the job not yet poppable**: the
    /// counter stays monotonic and a concurrent scrape can never observe
    /// `completed > submitted`. `depth_after` is exact for the same
    /// reason.
    pub(crate) fn record_accept(&self, shard: usize, depth_after: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.shard_depth[shard].store(depth_after as u64, Ordering::Relaxed);
        self.intake_depth.observe(depth_after as u64);
    }

    pub(crate) fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job shed by admission control (rejected for cost under
    /// overload, never executed).
    pub(crate) fn record_admission_shed(&self) {
        self.admission_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job deferred by admission control: accepted, but parked
    /// in the deferral buffer until the backlog drains.
    pub(crate) fn record_admission_requeued(&self) {
        self.admission_requeued.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job accepted straight into the deferral buffer: it is
    /// submitted (its ticket will resolve) but sits in no lane yet, so
    /// the depth gauges move only at re-injection.
    pub(crate) fn record_defer_accept(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-entry of a deferred job into an intake lane: only the depth
    /// gauge moves — the job was already counted submitted when it was
    /// first accepted (at deferral time).
    pub(crate) fn record_requeue_accept(&self, shard: usize, depth_after: usize) {
        self.shard_depth[shard].store(depth_after as u64, Ordering::Relaxed);
        self.intake_depth.observe(depth_after as u64);
    }

    /// Counts one lane move performed by the shard rebalancer.
    pub(crate) fn record_rebalance_move(&self) {
        self.rebalance_moves.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one worker panic converted into a `WorkerLost` report.
    pub(crate) fn record_worker_lost(&self) {
        self.worker_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Called from the queue's `on_pop` hook (under the lane lock), so
    /// per-lane gauge stores are serialized and never stick stale.
    pub(crate) fn record_dequeue(&self, shard: usize, depth_after: usize) {
        self.shard_depth[shard].store(depth_after as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_completion(
        &self,
        kind: JobKind,
        failed: bool,
        queries: u64,
        latency_micros: u64,
    ) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.completed_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
            self.failed_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        self.queries.fetch_add(queries, Ordering::Relaxed);
        self.latency.observe(latency_micros);
        self.latency_by_kind[kind.index()].observe(latency_micros);
    }

    /// Records the per-stage decomposition of one completed job: queue
    /// wait (accept → dequeue) and the execute-stage body, both in
    /// microseconds.
    pub(crate) fn record_stage_timing(&self, kind: JobKind, queue_wait_us: u64, exec_us: u64) {
        self.queue_wait.observe(queue_wait_us);
        self.exec_by_kind[kind.index()].observe(exec_us);
    }

    /// Attributes one executed job to the shard that ran it. `lane` is
    /// the intake lane it was popped from — a differing lane means the
    /// job was stolen, counted for the thief (`shard`) and the victim
    /// (`lane`) both.
    pub(crate) fn record_execution(&self, shard: usize, lane: usize) {
        self.shard_jobs[shard].fetch_add(1, Ordering::Relaxed);
        if lane != shard {
            self.shard_steals[shard].fetch_add(1, Ordering::Relaxed);
            self.shard_stolen_from[lane].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds executing time (dequeue → ticket resolved) to a shard's busy
    /// counter.
    pub(crate) fn record_shard_busy(&self, shard: usize, micros: u64) {
        self.shard_busy_us[shard].fetch_add(micros, Ordering::Relaxed);
    }

    /// Adds parked-waiting-for-work time to a shard's idle counter.
    pub(crate) fn record_shard_idle(&self, shard: usize, micros: u64) {
        self.shard_idle_us[shard].fetch_add(micros, Ordering::Relaxed);
    }

    /// Counts one SAT miter verification of a recovered witness;
    /// `unknown` records a budget-exhausted (inconclusive) verdict.
    pub(crate) fn record_sat_verify(&self, unknown: bool) {
        self.sat_verified.fetch_add(1, Ordering::Relaxed);
        if unknown {
            self.sat_unknown.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Samples a CDCL solver's internals after a solve: glue and
    /// learned-DB sizes are live gauges (last sample wins — they
    /// describe the solver the service just ran), while the XOR and
    /// inprocessing figures are deltas accumulated into totals.
    pub(crate) fn record_sat_core(
        &self,
        glue_kept: u64,
        learned_db: u64,
        xors_delta: u64,
        inprocess_delta_us: u64,
    ) {
        self.sat_glue_kept.store(glue_kept, Ordering::Relaxed);
        self.sat_learned_db.store(learned_db, Ordering::Relaxed);
        self.sat_xors_extracted
            .fetch_add(xors_delta, Ordering::Relaxed);
        self.sat_inprocess_us
            .fetch_add(inprocess_delta_us, Ordering::Relaxed);
    }

    /// Counts dense-table cache hits in a worker's oracle setup.
    pub(crate) fn record_table_cache_hits(&self, hits: u64) {
        self.table_cache_hits.fetch_add(hits, Ordering::Relaxed);
    }

    /// Counts one warm re-entry into a cached miter solver.
    pub(crate) fn record_solver_cache_hit(&self) {
        self.solver_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cold dense-table compile (a worker table-cache miss
    /// that actually built a table).
    pub(crate) fn record_table_compile(&self, micros: u64) {
        self.table_compile.observe(micros);
    }

    /// Counts one quantum-path job executed on `backend` (recorded at
    /// dispatch, whether or not the matcher succeeds).
    pub(crate) fn record_quantum_backend(&self, backend: QuantumBackend) {
        self.quantum_by_backend[backend.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts the witnesses found by one completed enumeration job.
    pub(crate) fn record_enumeration(&self, witnesses: u64) {
        self.enumerated_witnesses
            .fetch_add(witnesses, Ordering::Relaxed);
    }

    /// Counts one successful run of a named registry entry.
    pub(crate) fn record_entry_completion(&self, entry: &'static str) {
        *self
            .entry_completions
            .lock()
            .expect("entry metrics lock")
            .entry(entry)
            .or_insert(0) += 1;
    }

    /// Jobs accepted into the intake queue.
    pub fn jobs_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Jobs rejected with `QueueFull`.
    pub fn jobs_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Jobs shed by admission control under overload.
    pub fn jobs_shed(&self) -> u64 {
        self.admission_shed.load(Ordering::Relaxed)
    }

    /// Jobs deferred (re-queued) by admission control under overload.
    pub fn jobs_requeued(&self) -> u64 {
        self.admission_requeued.load(Ordering::Relaxed)
    }

    /// Lane moves performed by the shard rebalancer.
    pub fn rebalance_moves(&self) -> u64 {
        self.rebalance_moves.load(Ordering::Relaxed)
    }

    /// Worker panics converted into `WorkerLost` reports.
    pub fn workers_lost(&self) -> u64 {
        self.worker_lost.load(Ordering::Relaxed)
    }

    /// Jobs fully executed (their ticket is resolved).
    pub fn jobs_completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Jobs of one [`JobKind`] executed to completion.
    pub fn jobs_completed_of(&self, kind: JobKind) -> u64 {
        self.completed_by_kind[kind.index()].load(Ordering::Relaxed)
    }

    /// Failed jobs of one [`JobKind`].
    pub fn jobs_failed_of(&self, kind: JobKind) -> u64 {
        self.failed_by_kind[kind.index()].load(Ordering::Relaxed)
    }

    /// The accept-to-completion latency histogram of one [`JobKind`].
    pub fn latency_of(&self, kind: JobKind) -> &Histogram {
        &self.latency_by_kind[kind.index()]
    }

    /// Completed jobs whose matcher returned an error.
    pub fn jobs_failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Total oracle queries spent across completed jobs.
    pub fn oracle_queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Jobs whose recovered witness was checked against a SAT miter.
    pub fn jobs_sat_verified(&self) -> u64 {
        self.sat_verified.load(Ordering::Relaxed)
    }

    /// SAT verifications that exhausted their budget (inconclusive).
    pub fn sat_unknown(&self) -> u64 {
        self.sat_unknown.load(Ordering::Relaxed)
    }

    /// Glue (LBD ≤ 2) clauses held by the most recently sampled solver.
    pub fn sat_glue_kept(&self) -> u64 {
        self.sat_glue_kept.load(Ordering::Relaxed)
    }

    /// Learned-DB size of the most recently sampled solver.
    pub fn sat_learned_db_size(&self) -> u64 {
        self.sat_learned_db.load(Ordering::Relaxed)
    }

    /// XOR constraints extracted across all solver builds.
    pub fn sat_xors_extracted(&self) -> u64 {
        self.sat_xors_extracted.load(Ordering::Relaxed)
    }

    /// Microseconds spent in solver inprocessing passes.
    pub fn sat_inprocess_micros(&self) -> u64 {
        self.sat_inprocess_us.load(Ordering::Relaxed)
    }

    /// Dense-table cache hits across all workers.
    pub fn table_cache_hits(&self) -> u64 {
        self.table_cache_hits.load(Ordering::Relaxed)
    }

    /// Miter-solver cache hits across all workers.
    pub fn solver_cache_hits(&self) -> u64 {
        self.solver_cache_hits.load(Ordering::Relaxed)
    }

    /// Quantum-path jobs executed on one simulation backend.
    pub fn quantum_jobs_of_backend(&self, backend: QuantumBackend) -> u64 {
        self.quantum_by_backend[backend.index()].load(Ordering::Relaxed)
    }

    /// Family witnesses found across completed enumeration jobs.
    pub fn enumerated_witnesses(&self) -> u64 {
        self.enumerated_witnesses.load(Ordering::Relaxed)
    }

    /// Completions of one registry entry (by its stable matcher name),
    /// counting every job that ran the entry successfully — the
    /// per-registry-entry view underneath the per-kind counters.
    pub fn jobs_completed_of_entry(&self, entry: &str) -> u64 {
        self.entry_completions
            .lock()
            .expect("entry metrics lock")
            .get(entry)
            .copied()
            .unwrap_or(0)
    }

    /// Every registry entry that completed at least one job, with its
    /// count, in stable (sorted-by-name) order.
    pub fn entry_completions(&self) -> Vec<(&'static str, u64)> {
        self.entry_completions
            .lock()
            .expect("entry metrics lock")
            .iter()
            .map(|(&name, &count)| (name, count))
            .collect()
    }

    /// The job-latency histogram (accept → completion, microseconds).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// The intake-depth-at-submit histogram.
    pub fn intake_depth(&self) -> &Histogram {
        &self.intake_depth
    }

    /// The cold dense-table compile histogram (microseconds).
    pub fn table_compile(&self) -> &Histogram {
        &self.table_compile
    }

    /// The accept-to-dequeue queue-wait histogram (microseconds).
    pub fn queue_wait(&self) -> &Histogram {
        &self.queue_wait
    }

    /// The execute-stage latency histogram of one [`JobKind`]
    /// (microseconds; the `execute_*` body alone).
    pub fn exec_of(&self, kind: JobKind) -> &Histogram {
        &self.exec_by_kind[kind.index()]
    }

    /// Worker-shard count this registry was sized for.
    pub fn shards(&self) -> usize {
        self.shard_depth.len()
    }

    /// Jobs executed by one worker shard.
    pub fn shard_jobs_executed(&self, shard: usize) -> u64 {
        self.shard_jobs[shard].load(Ordering::Relaxed)
    }

    /// Jobs one shard pulled from other shards' lanes (steals performed).
    pub fn shard_steals(&self, shard: usize) -> u64 {
        self.shard_steals[shard].load(Ordering::Relaxed)
    }

    /// Jobs pulled out of one shard's lane by other shards.
    pub fn shard_stolen_from(&self, shard: usize) -> u64 {
        self.shard_stolen_from[shard].load(Ordering::Relaxed)
    }

    /// Microseconds one shard has spent executing jobs.
    pub fn shard_busy_micros(&self, shard: usize) -> u64 {
        self.shard_busy_us[shard].load(Ordering::Relaxed)
    }

    /// Microseconds one shard has spent parked waiting for work.
    pub fn shard_idle_micros(&self, shard: usize) -> u64 {
        self.shard_idle_us[shard].load(Ordering::Relaxed)
    }

    /// Serializes every metric in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let counters = [
            (
                "revmatch_jobs_submitted_total",
                "Jobs accepted into the intake queue.",
                self.jobs_submitted(),
            ),
            (
                "revmatch_jobs_rejected_total",
                "Jobs rejected because every intake lane was full.",
                self.jobs_rejected(),
            ),
            (
                "revmatch_jobs_completed_total",
                "Jobs executed to completion.",
                self.jobs_completed(),
            ),
            (
                "revmatch_admission_shed_total",
                "Jobs shed by admission control under overload (never executed).",
                self.jobs_shed(),
            ),
            (
                "revmatch_admission_requeued_total",
                "Jobs deferred by admission control until the backlog drained.",
                self.jobs_requeued(),
            ),
            (
                "revmatch_rebalance_moves_total",
                "Lane moves performed by the shard rebalancer.",
                self.rebalance_moves(),
            ),
            (
                "revmatch_worker_lost_total",
                "Worker panics converted into WorkerLost job reports.",
                self.workers_lost(),
            ),
            (
                "revmatch_jobs_failed_total",
                "Completed jobs whose matcher returned an error.",
                self.jobs_failed(),
            ),
            (
                "revmatch_oracle_queries_total",
                "Oracle queries spent across completed jobs.",
                self.oracle_queries(),
            ),
            (
                "revmatch_jobs_sat_verified_total",
                "Jobs whose recovered witness was checked against a SAT miter.",
                self.jobs_sat_verified(),
            ),
            (
                "revmatch_sat_unknown_total",
                "SAT verifications that exhausted their budget.",
                self.sat_unknown(),
            ),
            (
                "revmatch_sat_xors_extracted_total",
                "XOR constraints extracted across all solver builds.",
                self.sat_xors_extracted(),
            ),
            (
                "revmatch_table_cache_hits_total",
                "Worker dense-table cache hits.",
                self.table_cache_hits(),
            ),
            (
                "revmatch_solver_cache_hits_total",
                "Worker miter-solver cache hits.",
                self.solver_cache_hits(),
            ),
            (
                "revmatch_enumerated_witnesses_total",
                "Family witnesses found across completed enumeration jobs.",
                self.enumerated_witnesses(),
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        // Per-kind completion/failure counters: one metric per kind so
        // dashboards can alert on a single scenario family.
        for kind in JobKind::ALL {
            let name = format!("revmatch_jobs_{kind}_total");
            let _ = writeln!(out, "# HELP {name} Completed {kind} jobs.");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", self.jobs_completed_of(kind));
            let name = format!("revmatch_jobs_{kind}_failed_total");
            let _ = writeln!(out, "# HELP {name} Failed {kind} jobs.");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", self.jobs_failed_of(kind));
        }
        // Per-backend quantum-path dispatch counters: always emitted for
        // all three backends so dashboards see explicit zeroes.
        let name = "revmatch_quantum_backend_jobs_total";
        let _ = writeln!(
            out,
            "# HELP {name} Quantum-path jobs dispatched per simulation backend."
        );
        let _ = writeln!(out, "# TYPE {name} counter");
        for backend in QuantumBackend::ALL {
            let _ = writeln!(
                out,
                "{name}{{backend=\"{backend}\"}} {}",
                self.quantum_jobs_of_backend(backend)
            );
        }
        // Per-registry-entry completions: one labeled series per matcher
        // that actually ran, so dashboards can watch a single algorithm.
        let entries = self.entry_completions();
        if !entries.is_empty() {
            let name = "revmatch_registry_entry_jobs_total";
            let _ = writeln!(
                out,
                "# HELP {name} Completed jobs per algorithm entry (registry matcher names; \
                 enumeration families use their */sat-enumerate name)."
            );
            let _ = writeln!(out, "# TYPE {name} counter");
            for (entry, count) in entries {
                let _ = writeln!(out, "{name}{{entry=\"{}\"}} {count}", escape_label(entry));
            }
        }
        let _ = writeln!(
            out,
            "# HELP revmatch_shard_queue_depth Live intake depth per worker shard."
        );
        let _ = writeln!(out, "# TYPE revmatch_shard_queue_depth gauge");
        for (i, d) in self.shard_depth.iter().enumerate() {
            let _ = writeln!(
                out,
                "revmatch_shard_queue_depth{{shard=\"{i}\"}} {}",
                d.load(Ordering::Relaxed)
            );
        }
        // Per-shard runtime introspection: executed jobs, steal flow in
        // both directions, and busy/idle seconds — the inputs a
        // rebalancer (ROADMAP item 1) needs to spot a hot shard.
        let shard_counters: [(&str, &str, &Vec<AtomicU64>); 5] = [
            (
                "revmatch_shard_jobs_total",
                "Jobs executed per worker shard.",
                &self.shard_jobs,
            ),
            (
                "revmatch_shard_steals_total",
                "Jobs a shard pulled from another shard's lane.",
                &self.shard_steals,
            ),
            (
                "revmatch_shard_stolen_from_total",
                "Jobs pulled out of a shard's lane by other shards.",
                &self.shard_stolen_from,
            ),
            (
                "revmatch_shard_busy_seconds_total",
                "Seconds a shard has spent executing jobs.",
                &self.shard_busy_us,
            ),
            (
                "revmatch_shard_idle_seconds_total",
                "Seconds a shard has spent parked waiting for work.",
                &self.shard_idle_us,
            ),
        ];
        for (name, help, values) in shard_counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let seconds = name.ends_with("_seconds_total");
            for (i, v) in values.iter().enumerate() {
                let v = v.load(Ordering::Relaxed);
                if seconds {
                    let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", v as f64 / 1e6);
                } else {
                    let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {v}");
                }
            }
        }
        self.latency.render(
            &mut out,
            "revmatch_job_latency_seconds",
            "Job latency from intake accept to completion.",
            1e6,
        );
        // Per-kind latency as one labeled histogram family.
        let name = "revmatch_job_kind_latency_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} Job latency from intake accept to completion, by job kind."
        );
        let _ = writeln!(out, "# TYPE {name} histogram");
        for kind in JobKind::ALL {
            self.latency_by_kind[kind.index()].render_series(
                &mut out,
                name,
                &format!("kind=\"{kind}\","),
                1e6,
            );
        }
        self.intake_depth.render(
            &mut out,
            "revmatch_intake_depth",
            "Intake-lane depth observed at each accepted submit.",
            1.0,
        );
        self.table_compile.render(
            &mut out,
            "revmatch_table_compile_seconds",
            "Cold dense-table compile latency in worker oracle setup.",
            1e6,
        );
        self.queue_wait.render(
            &mut out,
            "revmatch_queue_wait_seconds",
            "Job wait from intake accept to worker dequeue.",
            1e6,
        );
        // Per-kind execute-stage latency as one labeled histogram family
        // (the execute_* body alone; queue wait reported above).
        let name = "revmatch_exec_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} Execute-stage latency by job kind (queue wait excluded)."
        );
        let _ = writeln!(out, "# TYPE {name} histogram");
        for kind in JobKind::ALL {
            self.exec_by_kind[kind.index()].render_series(
                &mut out,
                name,
                &format!("kind=\"{kind}\","),
                1e6,
            );
        }
        // SAT-core introspection: inprocessing time as a seconds
        // counter, the live clause-database shape as gauges.
        let name = "revmatch_sat_inprocess_seconds_total";
        let _ = writeln!(
            out,
            "# HELP {name} Seconds spent in solver inprocessing passes."
        );
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", self.sat_inprocess_micros() as f64 / 1e6);
        let sat_gauges = [
            (
                "revmatch_sat_glue_kept",
                "Glue (low-LBD) clauses held by the most recently sampled solver.",
                self.sat_glue_kept(),
            ),
            (
                "revmatch_sat_learned_db_size",
                "Learned-clause DB size of the most recently sampled solver.",
                self.sat_learned_db_size(),
            ),
        ];
        for (name, help, value) in sat_gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        // The evaluation kernel the batch entry points dispatch to, as
        // an info-style gauge (value always 1; the label carries the
        // resolved name, e.g. wide256-avx2).
        let name = "revmatch_kernel_info";
        let _ = writeln!(
            out,
            "# HELP {name} Active oracle evaluation kernel (dispatch-resolved)."
        );
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(
            out,
            "{name}{{kernel=\"{}\"}} 1",
            escape_label(revmatch_circuit::active_kernel_name())
        );
        // The quantum backend selection mode, mirroring the kernel gauge:
        // a forced backend's name, or "auto" under per-algorithm policy.
        let name = "revmatch_quantum_backend_info";
        let _ = writeln!(
            out,
            "# HELP {name} Active quantum backend selection (forced name or auto)."
        );
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(
            out,
            "{name}{{backend=\"{}\"}} 1",
            escape_label(revmatch_quantum::active_quantum_backend_name())
        );
        // The process-wide SAT feature set (lbd/inproc/xor), mirroring
        // the kernel gauge: override > REVMATCH_SAT_OPTS env > all.
        let name = "revmatch_sat_opts_info";
        let _ = writeln!(
            out,
            "# HELP {name} Active SAT solver feature set (lbd/inproc/xor)."
        );
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(
            out,
            "{name}{{opts=\"{}\"}} 1",
            escape_label(&revmatch_sat::active_sat_opts_label())
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_cumulative_with_overflow() {
        let h = Histogram::new(vec![1, 10, 100]);
        for v in [0, 1, 5, 50, 500] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 556);
        let mut out = String::new();
        h.render(&mut out, "t", "test", 1.0);
        assert!(out.contains("t_bucket{le=\"1\"} 2"));
        assert!(out.contains("t_bucket{le=\"10\"} 3"));
        assert!(out.contains("t_bucket{le=\"100\"} 4"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 5"));
        assert!(out.contains("t_count 5"));
    }

    #[test]
    fn quantile_bounds() {
        let h = Histogram::new(vec![10, 100, 1000]);
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for v in [5, 50, 50, 5000] {
            h.observe(v);
        }
        assert_eq!(h.quantile_upper_bound(0.25), Some(10));
        assert_eq!(h.quantile_upper_bound(0.5), Some(100));
        assert_eq!(h.quantile_upper_bound(0.75), Some(100));
        // Past the last bound: the observed maximum, not a u64::MAX
        // sentinel the caller would print as garbage.
        assert_eq!(h.quantile_upper_bound(1.0), Some(5000));
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn summary_reports_quantiles_and_caps_at_observed_max() {
        let h = Histogram::new(vec![10, 100, 1000]);
        assert_eq!(h.summary(&[0.5, 0.99]), None, "empty histogram");
        for v in [5, 6, 7, 8] {
            h.observe(v);
        }
        // All samples in the first bucket: every quantile is capped at
        // the observed max (8), not the bucket bound (10).
        assert_eq!(h.summary(&[0.5, 0.9, 0.99, 1.0]), Some(vec![8, 8, 8, 8]));
        h.observe(5000);
        assert_eq!(
            h.summary(&[0.5, 1.0]),
            Some(vec![10, 5000]),
            "p50 back to its bucket bound, overflow max reported exactly"
        );
    }

    #[test]
    fn quantile_zero_reports_the_observed_minimum() {
        let h = Histogram::new(vec![10, 100, 1000]);
        // Empty histogram: every quantile (including the edges) is None.
        assert_eq!(h.quantile_upper_bound(0.0), None);
        assert_eq!(h.quantile_upper_bound(1.0), None);
        for v in [7, 50, 5000] {
            h.observe(v);
        }
        // q=0 is the observed minimum, not the first occupied bucket's
        // upper bound (10) the old max(1) rank clamp reported.
        assert_eq!(h.quantile_upper_bound(0.0), Some(7));
        assert_eq!(h.min(), 7);
        assert_eq!(h.quantile_upper_bound(1.0), Some(5000));
        // A negative q clamps to the minimum too instead of panicking.
        assert_eq!(h.quantile_upper_bound(-0.5), Some(7));
    }

    #[test]
    fn label_values_escape_per_exposition_format() {
        assert_eq!(escape_label("plain-name"), "plain-name");
        assert_eq!(
            escape_label("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd",
            "backslash, quote and newline must be escaped"
        );
        let m = Metrics::new(1);
        m.record_entry_completion("bad\\entry\"with\nnoise");
        let text = m.render();
        assert!(
            text.contains(
                "revmatch_registry_entry_jobs_total{entry=\"bad\\\\entry\\\"with\\nnoise\"} 1"
            ),
            "escaped entry series missing:\n{text}"
        );
        assert!(
            !text.contains("with\nnoise"),
            "raw newline leaked into a label"
        );
    }

    #[test]
    fn render_includes_every_family() {
        let m = Metrics::new(2);
        m.record_accept(1, 3);
        m.record_completion(JobKind::Promise, false, 12, 250);
        m.record_completion(JobKind::Identify, true, 3, 100);
        m.record_reject();
        m.record_sat_verify(false);
        m.record_sat_verify(true);
        m.record_sat_core(3, 17, 2, 1_500);
        m.record_sat_core(5, 20, 0, 500);
        m.record_table_cache_hits(4);
        m.record_solver_cache_hit();
        m.record_table_compile(7);
        m.record_quantum_backend(QuantumBackend::Stabilizer);
        m.record_stage_timing(JobKind::Promise, 40, 210);
        m.record_execution(0, 0);
        m.record_execution(0, 1); // shard 0 steals from lane 1
        m.record_shard_busy(0, 250);
        m.record_shard_idle(1, 1_000);
        m.record_admission_shed();
        m.record_admission_requeued();
        m.record_rebalance_move();
        m.record_worker_lost();
        let text = m.render();
        for needle in [
            "revmatch_jobs_submitted_total 1",
            "revmatch_jobs_rejected_total 1",
            "revmatch_jobs_completed_total 2",
            "revmatch_admission_shed_total 1",
            "revmatch_admission_requeued_total 1",
            "revmatch_rebalance_moves_total 1",
            "revmatch_worker_lost_total 1",
            "revmatch_jobs_failed_total 1",
            "revmatch_oracle_queries_total 15",
            "revmatch_jobs_sat_verified_total 2",
            "revmatch_sat_unknown_total 1",
            "revmatch_table_cache_hits_total 4",
            "revmatch_solver_cache_hits_total 1",
            "revmatch_sat_glue_kept 5",
            "revmatch_sat_learned_db_size 20",
            "revmatch_sat_xors_extracted_total 2",
            "revmatch_sat_inprocess_seconds_total 0.002",
            "revmatch_sat_opts_info{opts=\"",
            "revmatch_jobs_promise_total 1",
            "revmatch_jobs_identify_total 1",
            "revmatch_jobs_identify_failed_total 1",
            "revmatch_jobs_quantum_total 0",
            "revmatch_jobs_sat_total 0",
            "revmatch_shard_queue_depth{shard=\"1\"} 3",
            "revmatch_job_latency_seconds_bucket",
            "revmatch_job_kind_latency_seconds_bucket{kind=\"promise\",le=",
            "revmatch_job_kind_latency_seconds_count{kind=\"identify\"} 1",
            "revmatch_intake_depth_count 1",
            "revmatch_table_compile_seconds_count 1",
            "revmatch_kernel_info{kernel=\"",
            "revmatch_quantum_backend_jobs_total{backend=\"dense\"} 0",
            "revmatch_quantum_backend_jobs_total{backend=\"stabilizer\"} 1",
            "revmatch_quantum_backend_info{backend=\"",
            "revmatch_shard_jobs_total{shard=\"0\"} 2",
            "revmatch_shard_steals_total{shard=\"0\"} 1",
            "revmatch_shard_steals_total{shard=\"1\"} 0",
            "revmatch_shard_stolen_from_total{shard=\"1\"} 1",
            "revmatch_shard_busy_seconds_total{shard=\"0\"} 0.00025",
            "revmatch_shard_idle_seconds_total{shard=\"1\"} 0.001",
            "revmatch_queue_wait_seconds_count 1",
            "revmatch_exec_seconds_bucket{kind=\"promise\",le=",
            "revmatch_exec_seconds_count{kind=\"promise\"} 1",
            "revmatch_exec_seconds_count{kind=\"quantum\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle}\n{text}");
        }
    }

    #[test]
    fn latency_scale_exports_seconds() {
        let m = Metrics::new(1);
        m.record_completion(JobKind::Sat, true, 1, 2_000_000); // 2 s
        let text = m.render();
        assert!(text.contains("revmatch_job_latency_seconds_sum 2"));
        assert!(text.contains("revmatch_jobs_failed_total 1"));
    }
}
