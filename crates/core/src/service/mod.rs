//! The sharded serving layer: continuous matching under load.
//!
//! [`crate::engine`] solves a pre-built slice of jobs and returns; a
//! production matcher faces the opposite shape — clients submit jobs over
//! time and expect explicit backpressure when they outrun the hardware.
//! [`MatchService`] is that layer:
//!
//! * **One intake, four scenario families**: every [`JobSpec`] kind —
//!   promise matching, non-promise identification, inverse-free
//!   quantum-path jobs and direct SAT-equivalence verdicts — flows
//!   through the same queue, worker shards, caches and metrics. A bare
//!   [`EngineJob`] still submits directly (it converts to a promise
//!   job). Matching algorithms are resolved through the
//!   [`crate::matchers::MatcherRegistry`], so a newly registered
//!   [`crate::matchers::Matcher`] is servable without touching this
//!   module.
//! * **N persistent worker shards** (`std::thread`, no external runtime),
//!   each owning one lane of a bounded MPMC intake queue. Jobs are routed
//!   by a hash of `(width, kind, equivalence)` so same-shaped work lands
//!   on the same shard — its dense-table/precompiled-oracle allocations
//!   and branch history stay hot — and idle workers steal from the
//!   fullest lane so affinity never costs parallelism.
//! * **Explicit backpressure**: [`MatchService::submit`] never blocks; it
//!   returns [`SubmitOutcome::Enqueued`] with a [`JobTicket`] or hands the
//!   job back as [`SubmitOutcome::QueueFull`]. [`MatchService::submit_wait`]
//!   is the blocking variant for batch producers.
//! * **Per-job completion handles**: a [`JobTicket`] resolves to the
//!   [`JobReport`] for exactly that job — results stream out as they
//!   finish, in any order, with nothing lost.
//! * **Graceful teardown**: [`MatchService::drain`] waits until every
//!   accepted job has completed (the service stays usable);
//!   [`MatchService::shutdown`] (and `Drop`) closes the intake, finishes
//!   the backlog, and joins the workers.
//! * **Metrics**: every accept/reject/completion feeds an atomic
//!   [`Metrics`] registry with a Prometheus-style text export
//!   ([`MatchService::metrics_text`]), including per-kind completion
//!   counters (`revmatch_jobs_{promise,identify,quantum,sat}_total`),
//!   `kind`-labeled latency and execute-stage histograms, queue-wait
//!   decomposition, and per-shard jobs/steal/busy/idle introspection.
//! * **Tracing** (opt-in, [`crate::observe`]): with a
//!   [`ServiceConfig::with_trace`] pin or `REVMATCH_TRACE` set, sampled
//!   jobs record lifecycle spans into lock-free per-shard rings,
//!   drained via [`MatchService::trace_spans`] /
//!   [`MatchService::trace_json`] (Chrome trace-event format). Every
//!   completed job carries a [`JobTiming`] breakdown regardless.
//!
//! Determinism mirrors the engine contract: a job solved with seed `s`
//! produces the same witness and query count whichever shard or worker
//! count executes it ([`MatchService::submit_seeded`]); `submit` derives
//! seeds from the service seed and the job's accept index, so a fixed
//! submission order is reproducible end to end.
//!
//! ```
//! use revmatch::{random_job_batch, Equivalence, MatchService, ServiceConfig, Side};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let jobs = random_job_batch(Equivalence::new(Side::Np, Side::I), 5, 4, true, &mut rng);
//! let service = MatchService::start(ServiceConfig::default().with_shards(2));
//! let tickets: Vec<_> = jobs
//!     .into_iter()
//!     .map(|job| service.submit_wait(job))
//!     .collect();
//! for t in tickets {
//!     assert!(t.wait().witness.is_ok());
//! }
//! assert_eq!(service.metrics().jobs_completed(), 4);
//! service.shutdown();
//! ```

mod admission;
mod cache;
mod metrics;
mod queue;
mod rebalance;

pub use admission::AdmissionConfig;
pub use metrics::{Histogram, Metrics};
pub use rebalance::{RebalanceConfig, RebalanceMove};

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use rand::SeedableRng;
use revmatch_sat::{SatOptions, SolveStats, SolverBackend};

use crate::engine::{
    EngineJob, EnumerateJob, IdentifyJob, JobKind, JobReport, JobSpec, QuantumAlgorithm,
    QuantumPathJob, SatEquivalenceJob,
};
use crate::enumerate::{sweep_family, sweep_family_dpll, FamilyMiter, WitnessFamily};
use crate::equivalence::Equivalence;
use crate::error::MatchError;
use crate::identify::{identify_equivalence_with_oracles, IdentifyOptions};
use crate::matchers::{
    solve_promise_named, InverseAvailability, MatcherConfig, MatcherRegistry, Path, ProblemOracles,
};
use crate::miter::{check_witness_sat_budgeted_with, MiterEncoding, MiterVerdict};
use crate::observe::{Detail, JobTiming, SpanRecord, Stage, TraceConfig, Tracer};
use crate::oracle::Oracle;
use crate::verify::VerifyMode;
use crate::witness::MatchWitness;
use admission::Admission;
use cache::ShardCaches;
use queue::ShardedQueue;
use rebalance::{LaneHeat, RebalanceState};

/// SplitMix64 increment used to whiten per-job seed indices; shared with
/// [`crate::engine`] so both paths derive identical seeds.
const SEED_WHITENER: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the RNG seed for the `index`-th job of a stream rooted at
/// `base` — independent of shard placement and worker count.
///
/// [`crate::MatchEngine::solve_batch`] seeds job `i` with
/// `job_seed(batch_seed, i)`; submitting the same jobs through
/// [`MatchService::submit_seeded`] with these seeds reproduces its
/// witnesses and query counts exactly.
pub fn job_seed(base: u64, index: u64) -> u64 {
    base ^ index.wrapping_mul(SEED_WHITENER)
}

/// Configuration for a [`MatchService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker shards (threads). Defaults to
    /// `available_parallelism`.
    pub shards: usize,
    /// Intake capacity **per shard lane**; total capacity is
    /// `shards × queue_capacity`. Defaults to 64.
    pub queue_capacity: usize,
    /// Matcher tuning shared by every worker.
    pub matcher: MatcherConfig,
    /// Eagerly compile oracles into dense tables ([`Oracle::precompiled`]),
    /// memoized per worker in a table LRU.
    pub precompile: bool,
    /// Base seed for [`MatchService::submit`]'s derived per-job seeds.
    pub seed: u64,
    /// SAT backend for jobs requesting miter verification
    /// ([`EngineJob::with_sat_verification`]). CDCL (the default) gets
    /// per-worker solver reuse; DPLL is stateless and kept for
    /// differential runs.
    pub solver_backend: SolverBackend,
    /// Decision + conflict budget per miter verification; exhausting it
    /// yields an explicit [`MiterVerdict::Unknown`] instead of stalling a
    /// worker shard.
    pub miter_budget: usize,
    /// CDCL feature set (LBD tiers, inprocessing, XOR/Gauss) applied to
    /// every worker-cached solver. Defaults to the process-wide
    /// selection ([`SatOptions::active`]: override > `REVMATCH_SAT_OPTS`
    /// env > all on); an explicit [`ServiceConfig::with_sat_opts`] pin
    /// wins over both.
    pub sat_opts: SatOptions,
    /// Span tracing: an explicit [`ServiceConfig::with_trace`] pin wins,
    /// the default defers to the `REVMATCH_TRACE` environment variable
    /// ([`TraceConfig::from_env`]), and unset means off — an untraced
    /// service allocates no recorder at all.
    pub trace: TraceConfig,
    /// Cost-aware admission control ([`AdmissionConfig`]); `None` (the
    /// default) admits every job FIFO exactly as before.
    pub admission: Option<AdmissionConfig>,
    /// Test-only fault injection: when set, a worker panics before
    /// executing any job whose accept index the predicate selects —
    /// exercising the `MatchError::WorkerLost` recovery path.
    #[doc(hidden)]
    pub panic_inject: Option<fn(u64) -> bool>,
}

/// Default per-verification search budget: generous enough for complete
/// width-14–16 verdicts on CDCL, while still bounding a worker's worst
/// case to well under a second.
pub const DEFAULT_MITER_BUDGET: usize = 2_000_000;

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 64,
            matcher: MatcherConfig::default(),
            precompile: true,
            seed: 0,
            solver_backend: SolverBackend::default(),
            miter_budget: DEFAULT_MITER_BUDGET,
            sat_opts: SatOptions::active(),
            trace: TraceConfig::from_env(),
            admission: None,
            panic_inject: None,
        }
    }
}

impl ServiceConfig {
    /// Overrides the shard count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the per-lane intake capacity (clamped to at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the matcher tuning.
    #[must_use]
    pub fn with_matcher(mut self, matcher: MatcherConfig) -> Self {
        self.matcher = matcher;
        self
    }

    /// Enables or disables dense-table oracle precompilation.
    #[must_use]
    pub fn with_precompiled_oracles(mut self, precompile: bool) -> Self {
        self.precompile = precompile;
        self
    }

    /// Sets the base seed for derived per-job seeds.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Picks the SAT backend for miter-verified jobs.
    #[must_use]
    pub fn with_solver_backend(mut self, backend: SolverBackend) -> Self {
        self.solver_backend = backend;
        self
    }

    /// Overrides the per-verification miter budget (clamped to ≥ 1).
    #[must_use]
    pub fn with_miter_budget(mut self, budget: usize) -> Self {
        self.miter_budget = budget.max(1);
        self
    }

    /// Pins the CDCL feature set for every worker-cached solver,
    /// overriding the process-wide selection (`REVMATCH_SAT_OPTS` /
    /// [`revmatch_sat::set_sat_opts_override`]). Any combination is
    /// verdict-identical; the options trade raw speed for bookkeeping.
    #[must_use]
    pub fn with_sat_opts(mut self, opts: SatOptions) -> Self {
        self.sat_opts = opts;
        self
    }

    /// Pins the span-tracing configuration, overriding the
    /// `REVMATCH_TRACE` environment default (see [`TraceConfig`];
    /// `TraceConfig::off()` pins tracing off even when the env enables
    /// it).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Pins every quantum-path job to one simulation backend, overriding
    /// both the `REVMATCH_QBACKEND` process override and the
    /// per-algorithm auto policy (stabilizer for Simon, sparse for swap
    /// tests). Jobs whose width exceeds the pinned backend's capacity
    /// complete with a clean error instead of falling back.
    #[must_use]
    pub fn with_quantum_backend(mut self, backend: revmatch_quantum::QuantumBackend) -> Self {
        self.matcher.quantum_backend = Some(backend);
        self
    }

    /// Enables cost-aware admission control: under overload (estimated
    /// queued work above [`AdmissionConfig::overload_us`]), expensive
    /// jobs are deferred or shed ([`SubmitOutcome::Shed`]) instead of
    /// FIFO-blocking cheap ones. Off by default.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Test-only: makes a worker panic before executing any job whose
    /// accept index the predicate selects (see
    /// [`MatchError::WorkerLost`]).
    #[doc(hidden)]
    #[must_use]
    pub fn with_panic_injection(mut self, inject: fn(u64) -> bool) -> Self {
        self.panic_inject = Some(inject);
        self
    }
}

/// State shared between a ticket and the worker resolving it.
#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<JobReport>>,
    done: Condvar,
}

/// Completion handle for one accepted job.
///
/// Returned by the `submit` family; resolves to the job's [`JobReport`]
/// via [`JobTicket::wait`]. Tickets outlive the service — a report
/// produced before shutdown can be claimed after it.
#[derive(Debug)]
pub struct JobTicket {
    id: u64,
    state: Arc<TicketState>,
}

impl JobTicket {
    /// The job's accept index (also the index used for derived seeding).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the job has finished (its report is ready).
    pub fn is_done(&self) -> bool {
        // Poison-tolerant: a worker that panicked between taking the
        // ticket lock and storing the report leaves the slot empty but
        // consistent — the WorkerLost recovery path fills it afterwards.
        self.state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Blocks until the job completes and returns its report. Never
    /// panics on a poisoned ticket: if the executing worker died
    /// mid-job, the service resolves the ticket with a clean
    /// [`MatchError::WorkerLost`] report instead of propagating the
    /// worker's panic into the waiter.
    pub fn wait(self) -> JobReport {
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(report) = slot.take() {
                return report;
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Result of a non-blocking [`MatchService::submit`].
#[derive(Debug)]
#[must_use = "a rejected job is handed back inside QueueFull"]
pub enum SubmitOutcome {
    /// The job was accepted; redeem the ticket for its report.
    Enqueued(JobTicket),
    /// Every intake lane is full; the job is returned untouched.
    QueueFull(JobSpec),
    /// Admission control shed the job: the service is overloaded, the
    /// job's estimated cost is above the expensive threshold, and the
    /// deferral buffer is full. The job is returned untouched; only
    /// services started [`ServiceConfig::with_admission`] produce this.
    Shed(JobSpec),
}

impl SubmitOutcome {
    /// Whether the job was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Self::Enqueued(_))
    }

    /// The ticket, if the job was accepted.
    pub fn ticket(self) -> Option<JobTicket> {
        match self {
            Self::Enqueued(t) => Some(t),
            Self::QueueFull(_) | Self::Shed(_) => None,
        }
    }
}

/// One queued unit of work.
#[derive(Debug)]
struct Request {
    /// The job's accept index (drives derived seeding and trace
    /// sampling; matches the ticket's [`JobTicket::id`]).
    id: u64,
    job: JobSpec,
    seed: u64,
    accepted_at: Instant,
    /// Admission-control cost estimate stamped at submit (0 with
    /// admission off); the backlog gauge moves by exactly this amount at
    /// enqueue and dequeue so it balances even as the model recalibrates.
    cost_us: u64,
    ticket: Arc<TicketState>,
}

/// The affinity-routing key: jobs sharing it land on the same shard.
type RouteKey = (usize, JobKind, Option<Equivalence>);

fn route_key(job: &JobSpec) -> RouteKey {
    (job.width(), job.kind(), job.equivalence())
}

/// Per-job observation state threaded through the `execute_*` paths: the
/// identity needed to emit spans plus the facts the executors discover
/// along the way (cache behavior, the substrate that did the work).
struct JobObs {
    /// Accept index of the job being executed.
    id: u64,
    /// The executing worker shard (the span ring to record into).
    shard: usize,
    /// Whether this job is trace-sampled (false with tracing off).
    traced: bool,
    /// Dense-table cache hits across the job's oracles.
    table_hits: u64,
    /// Whether any oracle was served from the table cache.
    cache_hit: bool,
    /// Substrate that executed the job (kernel / SAT / quantum backend),
    /// stamped by the executor for the execute span's label.
    detail: Detail,
}

impl JobObs {
    fn new(id: u64, shard: usize, traced: bool) -> Self {
        Self {
            id,
            shard,
            traced,
            table_hits: 0,
            cache_hit: false,
            detail: Detail::NONE,
        }
    }
}

/// State shared by the service handle and its workers.
#[derive(Debug)]
struct Shared {
    intake: ShardedQueue<Request>,
    metrics: Metrics,
    matcher: MatcherConfig,
    precompile: bool,
    solver_backend: SolverBackend,
    miter_budget: usize,
    sat_opts: SatOptions,
    /// Span recorder; `None` when tracing is off, so the cold path costs
    /// one pointer check per job.
    tracer: Option<Tracer>,
    /// Cost-aware admission controller; `None` (the default) is the
    /// plain FIFO intake.
    admission: Option<Admission>,
    /// Rebalancer route overrides: keys present here route to the mapped
    /// shard instead of their hash. Read per submit, written only inside
    /// a pause window.
    routes: RwLock<HashMap<RouteKey, usize>>,
    /// Per-key execution heat since the last rebalance move.
    heat: Mutex<HashMap<RouteKey, LaneHeat>>,
    /// Rebalancer window snapshots (see [`rebalance`]).
    rebalancer: Mutex<RebalanceState>,
    /// Test-only worker fault injection (see
    /// [`ServiceConfig::with_panic_injection`]).
    panic_inject: Option<fn(u64) -> bool>,
    /// Accepted-but-unfinished jobs, with a condvar for [`MatchService::drain`].
    in_flight: Mutex<usize>,
    idle: Condvar,
}

impl Shared {
    /// Wraps a circuit in an oracle, going through the worker's
    /// kind-keyed dense-table cache when precompilation is on. A cache
    /// miss that compiles a table records the compile's own latency in
    /// the `table_compile` histogram (warm-up cost, visible under
    /// load); a traced job additionally emits a `cache_probe` span with
    /// the `table_compile` span nested inside it.
    fn oracle(
        &self,
        kind: JobKind,
        circuit: revmatch_circuit::Circuit,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> Oracle {
        if self.precompile {
            let start = Instant::now();
            let (oracle, probe) = caches.oracle_for(kind, circuit);
            let probe_dur = start.elapsed();
            if probe.hit {
                obs.table_hits += 1;
                obs.cache_hit = true;
            }
            if let Some(compile) = probe.compile {
                self.metrics
                    .record_table_compile(compile.as_micros() as u64);
            }
            if obs.traced {
                if let Some(tracer) = &self.tracer {
                    tracer.record(
                        obs.shard,
                        obs.id,
                        Stage::CacheProbe,
                        kind,
                        Detail::NONE,
                        start,
                        probe_dur,
                    );
                    if let Some(compile) = probe.compile {
                        // End-aligned within the probe: the compile is
                        // the tail of the miss path, so the span nests
                        // under cache_probe in the trace view.
                        let lead = probe_dur.saturating_sub(compile);
                        tracer.record(
                            obs.shard,
                            obs.id,
                            Stage::TableCompile,
                            kind,
                            Detail::active_kernel(),
                            start + lead,
                            compile,
                        );
                    }
                }
            }
            oracle
        } else {
            Oracle::new(circuit)
        }
    }

    /// Executes one job with a deterministic RNG; the worker body. Takes
    /// the job by value — the circuits move into the oracles instead of
    /// being cloned a second time. `caches` is the worker's private
    /// memoization state (dense tables, miter solvers). Table reuse
    /// never changes results; solver reuse never changes a *completed*
    /// verdict, though under a tight miter budget a warm solver may
    /// resolve a formula a cold one left `Unknown` (see
    /// [`cache`](self) module docs).
    fn execute(
        &self,
        job: JobSpec,
        seed: u64,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let report = match job {
            JobSpec::Promise(job) => self.execute_promise(job, &mut rng, caches, obs),
            JobSpec::Identify(job) => self.execute_identify(job, &mut rng, caches, obs),
            JobSpec::QuantumPath(job) => self.execute_quantum(job, &mut rng, caches, obs),
            JobSpec::SatEquivalence(job) => self.execute_sat(job, caches, obs),
            JobSpec::Enumerate(job) => self.execute_enumerate(job, caches, obs),
        };
        self.metrics.record_table_cache_hits(obs.table_hits);
        report
    }

    /// The original promise workload: registry dispatch plus optional
    /// SAT verification of the recovered witness.
    fn execute_promise(
        &self,
        job: EngineJob,
        rng: &mut rand::rngs::StdRng,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Promise;
        obs.detail = Detail::active_kernel();
        let equivalence = job.equivalence;
        let c1 = self.oracle(kind, job.c1, caches, obs);
        let c2 = self.oracle(kind, job.c2, caches, obs);
        let (c1_inv, c2_inv) = if job.with_inverses {
            (
                Some(self.oracle(kind, c1.circuit().inverse(), caches, obs)),
                Some(self.oracle(kind, c2.circuit().inverse(), caches, obs)),
            )
        } else {
            (None, None)
        };
        let oracles = ProblemOracles {
            c1: &c1,
            c2: &c2,
            c1_inv: c1_inv.as_ref(),
            c2_inv: c2_inv.as_ref(),
        };
        let report = solve_promise_named(equivalence, &oracles, &self.matcher, rng);
        let (witness, rounds) = match report {
            Ok((entry, r)) => {
                self.metrics.record_entry_completion(entry);
                (Ok(r.witness), r.rounds)
            }
            Err(e) => (Err(e), 0),
        };
        let miter = if job.sat_verify {
            witness
                .as_ref()
                .ok()
                .map(|w| self.verify_witness(kind, c1.circuit(), c2.circuit(), w, caches))
        } else {
            None
        };
        JobReport {
            kind,
            witness,
            queries: oracles.total_queries(),
            charged_queries: oracles.total_queries(),
            rounds,
            identified: None,
            witness_count: None,
            miter,
            timing: JobTiming::default(),
        }
    }

    /// The §3 non-promise workflow: walk the lattice for the minimal
    /// class, with derived inverses, charging the whole walk.
    fn execute_identify(
        &self,
        job: IdentifyJob,
        rng: &mut rand::rngs::StdRng,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Identify;
        obs.detail = Detail::active_kernel();
        let c1 = job.c1;
        let c2 = job.c2;
        let (o1, o2, o1_inv, o2_inv) = (
            self.oracle(kind, c1.clone(), caches, obs),
            self.oracle(kind, c2.clone(), caches, obs),
            self.oracle(kind, c1.inverse(), caches, obs),
            self.oracle(kind, c2.inverse(), caches, obs),
        );
        let options = IdentifyOptions {
            config: self.matcher.clone(),
            allow_brute_force: job.allow_brute_force,
            verify: VerifyMode::Exhaustive,
        };
        let outcome =
            identify_equivalence_with_oracles(&c1, &c2, &o1, &o2, &o1_inv, &o2_inv, &options, rng);
        let spent = o1.queries() + o2.queries() + o1_inv.queries() + o2_inv.queries();
        let (witness, identified, rounds) = match outcome {
            Ok(Some(id)) => (
                Ok(id.witness),
                Some(id.equivalence),
                id.classes_tried as u64,
            ),
            Ok(None) => (Err(MatchError::NoEquivalence), None, 0),
            Err(e) => (Err(e), None, 0),
        };
        JobReport {
            kind,
            witness,
            queries: spent,
            charged_queries: spent,
            rounds,
            identified,
            witness_count: None,
            miter: None,
            timing: JobTiming::default(),
        }
    }

    /// The inverse-free quantum path: registry lookup on
    /// `(equivalence, None, Path::Quantum)`, with the Simon specialist
    /// selected by name. The simulation backend is resolved per
    /// algorithm (see [`MatcherConfig::simon_backend`] and
    /// [`MatcherConfig::swap_test_backend`]) and counted per job in the
    /// `revmatch_quantum_backend_jobs_total` metric. Oracles go through
    /// the worker's dense-table cache: Simon's classical oracle queries
    /// and sparse/dense quantum probes all route window evaluations
    /// through a compiled table when one exists.
    fn execute_quantum(
        &self,
        job: QuantumPathJob,
        rng: &mut rand::rngs::StdRng,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Quantum;
        let registry = MatcherRegistry::global();
        let matcher = match job.algorithm {
            QuantumAlgorithm::SwapTest => {
                registry.lookup(job.equivalence, InverseAvailability::None, Path::Quantum)
            }
            QuantumAlgorithm::Simon => registry
                .lookup_named("n-i/simon")
                .filter(|m| m.equivalence() == job.equivalence),
        };
        let backend = match job.algorithm {
            QuantumAlgorithm::SwapTest => self.matcher.swap_test_backend(),
            QuantumAlgorithm::Simon => self.matcher.simon_backend(),
        };
        self.metrics.record_quantum_backend(backend);
        obs.detail = Detail::quantum(backend);
        let Some(matcher) = matcher else {
            return JobReport {
                kind,
                witness: Err(MatchError::Intractable {
                    equivalence: format!("{} on the quantum path ({:?})", job.equivalence, {
                        job.algorithm
                    }),
                }),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            };
        };
        let c1 = self.oracle(kind, job.c1, caches, obs);
        let c2 = self.oracle(kind, job.c2, caches, obs);
        let oracles = ProblemOracles::without_inverses(&c1, &c2);
        let entry = matcher.name();
        match matcher.run(&oracles, &self.matcher, rng) {
            Ok(report) => {
                self.metrics.record_entry_completion(entry);
                JobReport {
                    kind,
                    witness: Ok(report.witness),
                    queries: report.queries,
                    charged_queries: report.charged_queries,
                    rounds: report.rounds,
                    identified: None,
                    witness_count: None,
                    miter: None,
                    timing: JobTiming::default(),
                }
            }
            Err(e) => JobReport {
                kind,
                witness: Err(e),
                queries: oracles.total_queries(),
                charged_queries: oracles.total_queries(),
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            },
        }
    }

    /// The direct white-box verdict: fold the claimed witness (identity
    /// when absent) into a miter and solve it on the configured backend
    /// through the worker's solver cache.
    fn execute_sat(
        &self,
        job: SatEquivalenceJob,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Sat;
        obs.detail = Detail::solver(self.solver_backend);
        let width = job.c1.width();
        let witness = job.witness.unwrap_or_else(|| MatchWitness::identity(width));
        if job.c2.width() != width {
            return JobReport {
                kind,
                witness: Err(MatchError::WidthMismatch {
                    left: width,
                    right: job.c2.width(),
                }),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            };
        }
        if witness.width() != width {
            return JobReport {
                kind,
                witness: Err(MatchError::WidthMismatch {
                    left: width,
                    right: witness.width(),
                }),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            };
        }
        let verdict = self.verify_witness(kind, &job.c1, &job.c2, &witness, caches);
        let witness = match &verdict {
            MiterVerdict::Equivalent => Ok(witness),
            MiterVerdict::Counterexample { .. } => Err(MatchError::PromiseViolated),
            MiterVerdict::Unknown { .. } => Err(MatchError::Inconclusive),
        };
        JobReport {
            kind,
            witness,
            queries: 0,
            charged_queries: 0,
            rounds: 0,
            identified: None,
            witness_count: None,
            miter: Some(verdict),
            timing: JobTiming::default(),
        }
    }

    /// Witness enumeration: sweep the whole candidate family under
    /// assumptions on one CDCL solver. The solver is cached per
    /// `(kind, family formula)` — a repeated family re-enters a solver
    /// whose learned clauses already cover every candidate, so warm
    /// re-enumerations answer mostly by propagation. (Assumptions never
    /// poison the cache; this is why the service sweeps instead of
    /// running blocking-clause mode.) The DPLL backend falls back to the
    /// stateless per-candidate sweep for differential runs.
    fn execute_enumerate(
        &self,
        job: EnumerateJob,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Enumerate;
        obs.detail = Detail::solver(self.solver_backend);
        let family = job.family;
        let outcome = FamilyMiter::build(&job.c1, &job.c2, family).and_then(|miter| {
            match self.solver_backend {
                SolverBackend::Cdcl => {
                    let (solver, hit) =
                        caches.solver_for_cnf(kind, &miter.cnf, || miter.input_hint());
                    if hit {
                        self.metrics.record_solver_cache_hit();
                    }
                    let (xors0, inproc0) = (solver.xors_extracted(), solver.inprocess_micros());
                    let swept = sweep_family(solver, &miter, Some(self.miter_budget));
                    self.metrics.record_sat_core(
                        solver.glue_clauses() as u64,
                        solver.num_learned() as u64,
                        (solver.xors_extracted() - xors0) as u64,
                        solver.inprocess_micros() - inproc0,
                    );
                    swept
                }
                // Stateless, but under the same per-solve budget: a hard
                // family must surface as Inconclusive, not pin a shard.
                SolverBackend::Dpll => sweep_family_dpll(&miter, Some(self.miter_budget)),
            }
        });
        match outcome {
            Ok(found) => {
                let count = found.count();
                let solves = found.solves;
                self.metrics.record_enumeration(count);
                self.metrics
                    .record_entry_completion(enumeration_entry_name(family));
                let witness = found
                    .witnesses
                    .into_iter()
                    .next()
                    .ok_or(MatchError::NoEquivalence);
                JobReport {
                    kind,
                    witness,
                    queries: 0,
                    charged_queries: 0,
                    rounds: solves,
                    identified: None,
                    witness_count: Some(count),
                    miter: None,
                    timing: JobTiming::default(),
                }
            }
            Err(e) => JobReport {
                kind,
                witness: Err(e),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            },
        }
    }

    /// Proves (or refutes) a recovered witness on the configured SAT
    /// backend. CDCL runs warm through the worker's solver cache (keyed
    /// by `(kind, formula)`): the same miter family re-enters a solver
    /// that already holds the learned refutation.
    fn verify_witness(
        &self,
        kind: JobKind,
        c1: &revmatch_circuit::Circuit,
        c2: &revmatch_circuit::Circuit,
        witness: &MatchWitness,
        caches: &mut ShardCaches,
    ) -> MiterVerdict {
        let verdict = match self.solver_backend {
            SolverBackend::Dpll => {
                check_witness_sat_budgeted_with(c1, c2, witness, self.miter_budget, {
                    SolverBackend::Dpll
                })
                .expect("a solved job's circuits share a width")
            }
            SolverBackend::Cdcl => {
                let miter = MiterEncoding::build(c1, c2, witness)
                    .expect("a solved job's circuits share a width");
                let (solver, hit) = caches.solver_for(kind, &miter);
                if hit {
                    self.metrics.record_solver_cache_hit();
                }
                let (xors0, inproc0) = (solver.xors_extracted(), solver.inprocess_micros());
                solver.set_budget(Some(self.miter_budget));
                let outcome = solver.solve_budgeted();
                let stats = SolveStats {
                    decisions: solver.decisions(),
                    conflicts: solver.conflicts(),
                    propagations: solver.propagations(),
                };
                self.metrics.record_sat_core(
                    solver.glue_clauses() as u64,
                    solver.num_learned() as u64,
                    (solver.xors_extracted() - xors0) as u64,
                    solver.inprocess_micros() - inproc0,
                );
                miter.verdict_from(outcome, stats)
            }
        };
        self.metrics.record_sat_verify(verdict.is_unknown());
        verdict
    }

    /// The in-flight counter, tolerating poison: a worker panic between
    /// lock and unlock never wedges `drain` or the submit paths (the
    /// count itself is updated before/after the unwind-prone sections).
    fn lock_in_flight(&self) -> MutexGuard<'_, usize> {
        self.in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The static affinity route for a key (hash modulo shard count).
    fn default_route(&self, key: &RouteKey) -> usize {
        let mut h = DefaultHasher::new();
        key.0.hash(&mut h);
        key.1.hash(&mut h);
        key.2.hash(&mut h);
        (h.finish() % self.intake.shards() as u64) as usize
    }

    /// The preferred shard for a key: a rebalancer override when one
    /// exists, the static hash otherwise.
    fn route_of(&self, key: &RouteKey) -> usize {
        let routes = self.routes.read().unwrap_or_else(PoisonError::into_inner);
        routes
            .get(key)
            .copied()
            .unwrap_or_else(|| self.default_route(key))
    }

    /// Accumulates one completed job into the per-key heat table the
    /// rebalancer ranks lanes by.
    fn note_heat(&self, key: RouteKey, exec_us: u64) {
        let mut heat = self.heat.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = heat.entry(key).or_default();
        entry.jobs += 1;
        entry.exec_us += exec_us;
    }

    /// Moves deferred jobs back into the intake once the backlog has
    /// drained below the low-water mark. Runs at the top of every worker
    /// iteration — the workers that drained the backlog are exactly the
    /// ones with capacity for the parked expensive work.
    fn reinject_deferred(&self, shard: usize) {
        let Some(adm) = &self.admission else { return };
        while adm.below_low_water() {
            let Some(req) = adm.pop_deferred() else {
                return;
            };
            let metrics = &self.metrics;
            match self.intake.try_push(shard, req, |req, lane, depth| {
                req.accepted_at = Instant::now();
                metrics.record_requeue_accept(lane, depth);
                adm.note_enqueued(req.cost_us);
            }) {
                Ok(_) => {}
                Err(req) => {
                    // Every lane is full; keep the job parked and let
                    // this worker chew on the queue instead.
                    adm.push_front_deferred(req);
                    return;
                }
            }
        }
    }

    /// Worker main loop for shard `shard`: re-inject deferred work, pop,
    /// and process until the intake closes and drains; then execute any
    /// jobs still parked in the deferral buffer inline so shutdown
    /// resolves every outstanding ticket.
    fn run_worker(&self, shard: usize) {
        let mut caches = ShardCaches::new(self.sat_opts);
        let mut idle_since = Instant::now();
        loop {
            self.reinject_deferred(shard);
            let Some((req, lane)) = self.intake.pop(shard, |lane, depth| {
                self.metrics.record_dequeue(lane, depth)
            }) else {
                break;
            };
            if let Some(adm) = &self.admission {
                adm.note_dequeued(req.cost_us);
            }
            self.process_request(req, lane, shard, &mut caches, &mut idle_since);
        }
        while let Some(req) = self.admission.as_ref().and_then(Admission::pop_deferred) {
            self.process_request(req, shard, shard, &mut caches, &mut idle_since);
        }
    }

    /// Processes one dequeued request: time every lifecycle stage,
    /// execute, stamp the report's [`JobTiming`], resolve the ticket, and
    /// (for sampled jobs) emit the `queue_wait → dequeue → execute →
    /// report` spans. Timing measurement is unconditional — a handful of
    /// `Instant` reads per job — so every report carries its breakdown
    /// even with tracing off; only span *recording* is gated.
    ///
    /// The execute path runs under `catch_unwind`: a panic inside a
    /// matcher (or the test-only injection hook) becomes a clean
    /// [`MatchError::WorkerLost`] report on this job's ticket instead of
    /// killing the shard and poisoning the ticket mutex for the waiter.
    fn process_request(
        &self,
        req: Request,
        lane: usize,
        shard: usize,
        caches: &mut ShardCaches,
        idle_since: &mut Instant,
    ) {
        let dequeued_at = Instant::now();
        self.metrics.record_shard_idle(
            shard,
            dequeued_at
                .saturating_duration_since(*idle_since)
                .as_micros() as u64,
        );
        self.metrics.record_execution(shard, lane);
        let Request {
            id,
            job,
            seed,
            accepted_at,
            cost_us: _,
            ticket,
        } = req;
        let queue_wait = dequeued_at.saturating_duration_since(accepted_at);
        let kind = job.kind();
        let key = route_key(&job);
        let traced = self.tracer.as_ref().is_some_and(|t| t.traced(id));
        let mut obs = JobObs::new(id, shard, traced);
        let exec_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(inject) = self.panic_inject {
                if inject(id) {
                    panic!("injected worker panic (job {id})");
                }
            }
            self.execute(job, seed, caches, &mut obs)
        }));
        let exec_dur = exec_start.elapsed();
        let (mut report, lost) = match outcome {
            Ok(report) => (report, false),
            Err(_) => {
                // The unwind may have left the worker's memoization
                // state (dense tables, miter solvers) mid-mutation —
                // rebuild it rather than trust it.
                *caches = ShardCaches::new(self.sat_opts);
                self.metrics.record_worker_lost();
                (worker_lost_report(kind), true)
            }
        };
        report.timing = JobTiming {
            queue_wait_us: queue_wait.as_micros() as u64,
            exec_us: exec_dur.as_micros() as u64,
            cache_hit: obs.cache_hit,
        };
        self.metrics
            .record_stage_timing(kind, report.timing.queue_wait_us, report.timing.exec_us);
        if !lost {
            // Calibrate the admission cost model with the measured
            // execute time (panicked jobs would skew it toward zero).
            if let Some(adm) = &self.admission {
                adm.observe(kind, key.0, report.timing.exec_us);
            }
        }
        self.note_heat(key, report.timing.exec_us);
        let latency = accepted_at.elapsed().as_micros() as u64;
        let failed = job_failed(&report);
        self.metrics
            .record_completion(report.kind, failed, report.queries, latency);
        let report_start = Instant::now();
        *ticket.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(report);
        ticket.done.notify_all();
        // Spans land before the in-flight count drops so a
        // `drain()` returning implies every completed job's spans
        // are already in the rings — `trace_spans` after a drain is
        // a consistent cut.
        if traced {
            if let Some(tracer) = &self.tracer {
                let d = Detail::NONE;
                tracer.record(
                    shard,
                    id,
                    Stage::QueueWait,
                    kind,
                    d,
                    accepted_at,
                    queue_wait,
                );
                tracer.record(
                    shard,
                    id,
                    Stage::Dequeue,
                    kind,
                    d,
                    dequeued_at,
                    exec_start.saturating_duration_since(dequeued_at),
                );
                tracer.record(shard, id, Stage::Execute, kind, obs.detail, exec_start, {
                    exec_dur
                });
                tracer.record(
                    shard,
                    id,
                    Stage::Report,
                    kind,
                    d,
                    report_start,
                    report_start.elapsed(),
                );
            }
        }
        let mut in_flight = self.lock_in_flight();
        *in_flight -= 1;
        if *in_flight == 0 {
            self.idle.notify_all();
        }
        drop(in_flight);
        *idle_since = Instant::now();
        self.metrics.record_shard_busy(
            shard,
            idle_since
                .saturating_duration_since(dequeued_at)
                .as_micros() as u64,
        );
    }
}

/// The clean report a job receives when its worker panicked mid-execute:
/// the job never completed, so every result field is empty and the error
/// is [`MatchError::WorkerLost`].
fn worker_lost_report(kind: JobKind) -> JobReport {
    JobReport {
        kind,
        witness: Err(MatchError::WorkerLost),
        queries: 0,
        charged_queries: 0,
        rounds: 0,
        identified: None,
        witness_count: None,
        miter: None,
        timing: JobTiming::default(),
    }
}

/// The stable per-entry metric name of an enumeration family. Four of
/// the five match the registry's `*/sat-enumerate` promise-path entries
/// by name; `n-n/sat-enumerate` follows the same convention but has no
/// registry entry — N-N is UNIQUE-SAT-hard, so the registry must not
/// offer it as a promise matcher, while the enumeration job kind may
/// still sweep it completely at bounded width.
fn enumeration_entry_name(family: WitnessFamily) -> &'static str {
    match family {
        WitnessFamily::InputNegation => "n-i/sat-enumerate",
        WitnessFamily::OutputNegation => "i-n/sat-enumerate",
        WitnessFamily::BothNegations => "n-n/sat-enumerate",
        WitnessFamily::InputPermutation => "p-i/sat-enumerate",
        WitnessFamily::OutputPermutation => "i-p/sat-enumerate",
    }
}

/// Whether a completed report counts as a failure in the metrics.
///
/// Per kind: a promise/quantum job fails when no witness came back, or
/// when a requested miter verification *refuted* the witness (the
/// matcher's answer was wrong). An identification job fails only on a
/// real error — "no class explains the pair" is a valid answer. A SAT
/// job fails only when the verdict is `Unknown` (budget ran out); a
/// counterexample is a definitive, successful verdict. An enumeration
/// job fails on a real error (budget exhaustion, unsupported width) —
/// a zero witness count is a complete, valid answer.
fn job_failed(report: &JobReport) -> bool {
    match report.kind {
        JobKind::Promise | JobKind::Quantum => {
            report.witness.is_err()
                || matches!(report.miter, Some(MiterVerdict::Counterexample { .. }))
        }
        JobKind::Identify | JobKind::Enumerate => {
            matches!(&report.witness, Err(e) if !matches!(e, MatchError::NoEquivalence))
        }
        JobKind::Sat => !matches!(
            report.miter,
            Some(MiterVerdict::Equivalent) | Some(MiterVerdict::Counterexample { .. })
        ),
    }
}

/// A long-lived sharded matching service — see the [module docs](self).
#[derive(Debug)]
pub struct MatchService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    base_seed: u64,
}

impl MatchService {
    /// Spawns the worker shards and opens the intake queue.
    pub fn start(config: ServiceConfig) -> Self {
        let shards = config.shards.max(1);
        let shared = Arc::new(Shared {
            intake: ShardedQueue::new(shards, config.queue_capacity.max(1)),
            metrics: Metrics::new(shards),
            matcher: config.matcher,
            precompile: config.precompile,
            solver_backend: config.solver_backend,
            miter_budget: config.miter_budget.max(1),
            sat_opts: config.sat_opts,
            tracer: config
                .trace
                .enabled()
                .then(|| Tracer::new(config.trace, shards)),
            admission: config.admission.map(Admission::new),
            routes: RwLock::new(HashMap::new()),
            heat: Mutex::new(HashMap::new()),
            rebalancer: Mutex::new(RebalanceState::new(shards)),
            panic_inject: config.panic_inject,
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
        });
        let workers = (0..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("revmatch-shard-{shard}"))
                    .spawn(move || shared.run_worker(shard))
                    .expect("spawn worker shard")
            })
            .collect();
        Self {
            shared,
            workers,
            next_id: AtomicU64::new(0),
            base_seed: config.seed,
        }
    }

    /// Worker-shard count.
    pub fn shards(&self) -> usize {
        self.shared.intake.shards()
    }

    /// Jobs currently queued across every intake lane.
    pub fn queue_depth(&self) -> usize {
        self.shared.intake.total_depth()
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The metrics registry rendered in the Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render()
    }

    /// The span recorder, when tracing is enabled (`None` otherwise).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.shared.tracer.as_ref()
    }

    /// Drains every retained span, start-ordered — empty with tracing
    /// off. See [`Tracer::spans`]. A job's worker-side spans land
    /// before it leaves the in-flight count, so [`drain`](Self::drain)
    /// followed by this call is a consistent cut; a ticket resolving is
    /// *not* yet that guarantee.
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.tracer().map(Tracer::spans).unwrap_or_default()
    }

    /// The retained spans serialized as Chrome trace-event JSON
    /// (Perfetto-loadable); `None` with tracing off.
    pub fn trace_json(&self) -> Option<String> {
        self.tracer()
            .map(|t| crate::observe::chrome_trace_json(&t.spans(), self.shards()))
    }

    /// Routes a job to its preferred shard by `(width, kind,
    /// equivalence)`, so same-shaped work of the same family lands on
    /// the same shard and its kind-keyed caches stay hot. Rebalancer
    /// overrides ([`Self::rebalance`]) win over the static hash.
    fn route(&self, job: &JobSpec) -> usize {
        self.shared.route_of(&route_key(job))
    }

    /// The shard a job would currently be routed to — the static
    /// affinity hash, adjusted by any rebalancer lane moves. Exposed for
    /// placement-sensitive tests and operational introspection.
    pub fn preferred_shard(&self, job: &JobSpec) -> usize {
        self.route(job)
    }

    /// The admission controller's current backlog estimate in µs of
    /// queued execute time (0 with admission off).
    pub fn admission_backlog_us(&self) -> u64 {
        self.shared
            .admission
            .as_ref()
            .map_or(0, Admission::backlog_us)
    }

    /// Jobs currently parked in the admission deferral buffer.
    pub fn deferred_depth(&self) -> usize {
        self.shared
            .admission
            .as_ref()
            .map_or(0, Admission::deferred_len)
    }

    /// The admission cost model's current estimate for a `(kind, width)`
    /// job in µs (the static seed estimate with admission off).
    pub fn admission_estimate_us(&self, kind: JobKind, width: usize) -> u64 {
        match &self.shared.admission {
            Some(adm) => adm.estimate_us(kind, width),
            None => 0,
        }
    }

    /// Allocates the next submit index and builds the request/ticket pair.
    /// `seed: None` derives the job seed from the service seed and the
    /// allocated index (so a fixed submit sequence replays exactly).
    fn make_request(&self, job: JobSpec, seed: Option<u64>) -> (Request, JobTicket) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let seed = seed.unwrap_or_else(|| job_seed(self.base_seed, id));
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        (
            Request {
                id,
                job,
                seed,
                // Provisional; re-stamped under the lane lock at the
                // moment the request actually enters the intake.
                accepted_at: Instant::now(),
                // Stamped by the submit paths when admission is on.
                cost_us: 0,
                ticket: Arc::clone(&state),
            },
            JobTicket { id, state },
        )
    }

    /// Records the producer-side `submit` span (routing + enqueue) for a
    /// sampled accepted job, into the tracer's dedicated submit ring.
    fn record_submit_span(&self, id: u64, kind: JobKind, start: Instant) {
        if let Some(tracer) = &self.shared.tracer {
            if tracer.traced(id) {
                tracer.record(
                    tracer.submit_ring(),
                    id,
                    Stage::Submit,
                    kind,
                    Detail::NONE,
                    start,
                    start.elapsed(),
                );
            }
        }
    }

    /// Non-blocking submit with a seed derived from the service seed and
    /// the job's submit index (rejected submits consume an index too).
    /// Accepts any [`JobSpec`] kind (a bare [`EngineJob`] converts to a
    /// promise job).
    pub fn submit(&self, job: impl Into<JobSpec>) -> SubmitOutcome {
        self.submit_inner(job.into(), None)
    }

    /// Non-blocking submit with an explicit per-job seed: the job's
    /// outcome depends only on `(job, seed)`, never on placement.
    pub fn submit_seeded(&self, job: impl Into<JobSpec>, seed: u64) -> SubmitOutcome {
        self.submit_inner(job.into(), Some(seed))
    }

    fn submit_inner(&self, job: JobSpec, seed: Option<u64>) -> SubmitOutcome {
        let submit_start = Instant::now();
        let kind = job.kind();
        let width = job.width();
        let preferred = self.route(&job);
        {
            let mut in_flight = self.shared.lock_in_flight();
            *in_flight += 1;
        }
        let (mut request, ticket) = self.make_request(job, seed);
        let adm = self.shared.admission.as_ref();
        if let Some(adm) = adm {
            request.cost_us = adm.estimate_us(kind, width);
            // Overload policy: an expensive job meeting a saturated
            // backlog is parked (requeued) rather than FIFO-blocking
            // the cheap work behind it — and shed outright when the
            // parking buffer is full too.
            if request.cost_us >= adm.config().expensive_us && adm.overloaded() {
                return match adm.defer(request) {
                    None => {
                        self.shared.metrics.record_defer_accept();
                        self.shared.metrics.record_admission_requeued();
                        // If the backlog collapsed between the overload
                        // check and the park (workers drained it and are
                        // now blocked in pop), nobody would wake to
                        // re-inject — close the race from this side.
                        self.shared.reinject_deferred(preferred);
                        self.record_submit_span(ticket.id(), kind, submit_start);
                        SubmitOutcome::Enqueued(ticket)
                    }
                    Some(request) => {
                        self.uncount_in_flight();
                        self.shared.metrics.record_admission_shed();
                        SubmitOutcome::Shed(request.job)
                    }
                };
            }
        }
        // The accept hook runs under the lane lock, before the job is
        // poppable: the submitted counter stays monotonic yet can never
        // trail a completion, and the accept timestamp is stamped at the
        // true enqueue moment.
        let metrics = &self.shared.metrics;
        match self
            .shared
            .intake
            .try_push(preferred, request, |req, lane, depth| {
                req.accepted_at = Instant::now();
                metrics.record_accept(lane, depth);
                if let Some(adm) = adm {
                    adm.note_enqueued(req.cost_us);
                }
            }) {
            Ok(_) => {
                self.record_submit_span(ticket.id(), kind, submit_start);
                SubmitOutcome::Enqueued(ticket)
            }
            Err(request) => {
                self.uncount_in_flight();
                self.shared.metrics.record_reject();
                SubmitOutcome::QueueFull(request.job)
            }
        }
    }

    /// Reverses the in-flight increment for a job that was counted but
    /// never entered the intake (queue-full rejection or admission shed).
    fn uncount_in_flight(&self) {
        let mut in_flight = self.shared.lock_in_flight();
        *in_flight -= 1;
        if *in_flight == 0 {
            self.shared.idle.notify_all();
        }
    }

    /// Blocking submit (derived seed): waits for intake space instead of
    /// rejecting. Accepts any [`JobSpec`] kind.
    pub fn submit_wait(&self, job: impl Into<JobSpec>) -> JobTicket {
        self.submit_wait_inner(job.into(), None)
    }

    /// Blocking submit with an explicit per-job seed.
    pub fn submit_wait_seeded(&self, job: impl Into<JobSpec>, seed: u64) -> JobTicket {
        self.submit_wait_inner(job.into(), Some(seed))
    }

    fn submit_wait_inner(&self, job: JobSpec, seed: Option<u64>) -> JobTicket {
        let submit_start = Instant::now();
        let kind = job.kind();
        let width = job.width();
        let preferred = self.route(&job);
        {
            let mut in_flight = self.shared.lock_in_flight();
            *in_flight += 1;
        }
        let (mut request, ticket) = self.make_request(job, seed);
        // A blocking submitter accepts waiting, so admission never sheds
        // or defers it — but the job's cost still enters the backlog
        // gauge so concurrent non-blocking submits see a true estimate.
        let adm = self.shared.admission.as_ref();
        if let Some(adm) = adm {
            request.cost_us = adm.estimate_us(kind, width);
        }
        // As in `submit_inner`: the job is only counted and timestamped
        // at the moment it actually enters a lane — time spent blocked on
        // a full intake is not billed to the job's latency.
        let metrics = &self.shared.metrics;
        match self
            .shared
            .intake
            .push_wait(preferred, request, |req, lane, depth| {
                req.accepted_at = Instant::now();
                metrics.record_accept(lane, depth);
                if let Some(adm) = adm {
                    adm.note_enqueued(req.cost_us);
                }
            }) {
            Ok(_) => {
                self.record_submit_span(ticket.id(), kind, submit_start);
                ticket
            }
            Err(_) => unreachable!("intake is open for the service's lifetime"),
        }
    }

    /// Blocks until every accepted job has completed. The service remains
    /// open: submits racing with `drain` extend the wait.
    pub fn drain(&self) {
        let mut in_flight = self.shared.in_flight.lock().expect("in_flight lock");
        while *in_flight > 0 {
            in_flight = self.shared.idle.wait(in_flight).expect("drain wait");
        }
    }

    /// Pauses the worker shards (they finish the job in hand and park).
    /// Submits still enqueue, so a paused service exposes backpressure
    /// deterministically — used for rebalancing windows and tests.
    pub fn pause(&self) {
        self.shared.intake.pause();
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        self.shared.intake.resume();
    }

    /// One step of the adaptive shard rebalancer — see the
    /// [`rebalance`] module docs for the policy. Call it periodically
    /// (each call is one observation window); it returns the lane move
    /// it performed, or `None` when the load is balanced, the imbalance
    /// is not yet sustained, or the service has a single shard.
    ///
    /// A move flips the route table inside a [`Self::pause`]/`resume`
    /// window and only redirects future submits; it never changes
    /// results, because job seeds are placement-independent.
    pub fn rebalance(&self, config: &RebalanceConfig) -> Option<RebalanceMove> {
        let shards = self.shards();
        if shards < 2 {
            return None;
        }
        let metrics = &self.shared.metrics;
        let mut state = self
            .shared
            .rebalancer
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Window deltas against the last call's snapshots.
        let mut stolen = vec![0u64; shards];
        let mut idle = vec![0u64; shards];
        for shard in 0..shards {
            let s = metrics.shard_stolen_from(shard);
            let i = metrics.shard_idle_micros(shard);
            stolen[shard] = s.saturating_sub(state.last_stolen_from[shard]);
            idle[shard] = i.saturating_sub(state.last_idle_us[shard]);
            state.last_stolen_from[shard] = s;
            state.last_idle_us[shard] = i;
        }
        let victim = (0..shards).max_by_key(|&s| stolen[s])?;
        if stolen[victim] < config.min_steals {
            state.streak_shard = None;
            state.streak = 0;
            return None;
        }
        if state.streak_shard == Some(victim) {
            state.streak += 1;
        } else {
            state.streak_shard = Some(victim);
            state.streak = 1;
        }
        if state.streak < config.sustain {
            return None;
        }
        state.streak_shard = None;
        state.streak = 0;
        drop(state);
        // The shard that idled most this window has spare capacity.
        let beneficiary = (0..shards)
            .filter(|&s| s != victim)
            .max_by_key(|&s| idle[s])?;
        // Move the victim's hottest lane (most execute-µs accumulated
        // since the last move among keys currently routed to it).
        let key = {
            let heat = self
                .shared
                .heat
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            heat.iter()
                .filter(|(k, _)| self.shared.route_of(k) == victim)
                .max_by_key(|(_, h)| h.exec_us)
                .map(|(k, _)| *k)?
        };
        // Flip the route inside a pause window: no worker is mid-pop
        // while the table changes, so a lane's jobs never interleave
        // between two preferred shards within one submit burst.
        self.pause();
        self.shared
            .routes
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, beneficiary);
        self.resume();
        self.shared.metrics.record_rebalance_move();
        // Heat restarts from zero so the next move ranks fresh traffic.
        self.shared
            .heat
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        Some(RebalanceMove {
            width: key.0,
            kind: key.1,
            equivalence: key.2,
            from: victim,
            to: beneficiary,
        })
    }

    /// Graceful shutdown: closes the intake, completes the backlog, joins
    /// the workers. Outstanding tickets resolve before this returns.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.shared.intake.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MatchService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}
