//! The sharded serving layer: continuous matching under load.
//!
//! [`crate::engine`] solves a pre-built slice of jobs and returns; a
//! production matcher faces the opposite shape — clients submit jobs over
//! time and expect explicit backpressure when they outrun the hardware.
//! [`MatchService`] is that layer:
//!
//! * **One intake, four scenario families**: every [`JobSpec`] kind —
//!   promise matching, non-promise identification, inverse-free
//!   quantum-path jobs and direct SAT-equivalence verdicts — flows
//!   through the same queue, worker shards, caches and metrics. A bare
//!   [`EngineJob`] still submits directly (it converts to a promise
//!   job). Matching algorithms are resolved through the
//!   [`crate::matchers::MatcherRegistry`], so a newly registered
//!   [`crate::matchers::Matcher`] is servable without touching this
//!   module.
//! * **N persistent worker shards** (`std::thread`, no external runtime),
//!   each owning one lane of a bounded MPMC intake queue. Jobs are routed
//!   by a hash of `(width, kind, equivalence)` so same-shaped work lands
//!   on the same shard — its dense-table/precompiled-oracle allocations
//!   and branch history stay hot — and idle workers steal from the
//!   fullest lane so affinity never costs parallelism.
//! * **Explicit backpressure**: [`MatchService::submit`] never blocks; it
//!   returns [`SubmitOutcome::Enqueued`] with a [`JobTicket`] or hands the
//!   job back as [`SubmitOutcome::QueueFull`]. [`MatchService::submit_wait`]
//!   is the blocking variant for batch producers.
//! * **Per-job completion handles**: a [`JobTicket`] resolves to the
//!   [`JobReport`] for exactly that job — results stream out as they
//!   finish, in any order, with nothing lost.
//! * **Graceful teardown**: [`MatchService::drain`] waits until every
//!   accepted job has completed (the service stays usable);
//!   [`MatchService::shutdown`] (and `Drop`) closes the intake, finishes
//!   the backlog, and joins the workers.
//! * **Metrics**: every accept/reject/completion feeds an atomic
//!   [`Metrics`] registry with a Prometheus-style text export
//!   ([`MatchService::metrics_text`]), including per-kind completion
//!   counters (`revmatch_jobs_{promise,identify,quantum,sat}_total`),
//!   `kind`-labeled latency and execute-stage histograms, queue-wait
//!   decomposition, and per-shard jobs/steal/busy/idle introspection.
//! * **Tracing** (opt-in, [`crate::observe`]): with a
//!   [`ServiceConfig::with_trace`] pin or `REVMATCH_TRACE` set, sampled
//!   jobs record lifecycle spans into lock-free per-shard rings,
//!   drained via [`MatchService::trace_spans`] /
//!   [`MatchService::trace_json`] (Chrome trace-event format). Every
//!   completed job carries a [`JobTiming`] breakdown regardless.
//!
//! Determinism mirrors the engine contract: a job solved with seed `s`
//! produces the same witness and query count whichever shard or worker
//! count executes it ([`MatchService::submit_seeded`]); `submit` derives
//! seeds from the service seed and the job's accept index, so a fixed
//! submission order is reproducible end to end.
//!
//! ```
//! use revmatch::{random_job_batch, Equivalence, MatchService, ServiceConfig, Side};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let jobs = random_job_batch(Equivalence::new(Side::Np, Side::I), 5, 4, true, &mut rng);
//! let service = MatchService::start(ServiceConfig::default().with_shards(2));
//! let tickets: Vec<_> = jobs
//!     .into_iter()
//!     .map(|job| service.submit_wait(job))
//!     .collect();
//! for t in tickets {
//!     assert!(t.wait().witness.is_ok());
//! }
//! assert_eq!(service.metrics().jobs_completed(), 4);
//! service.shutdown();
//! ```

mod cache;
mod metrics;
mod queue;

pub use metrics::{Histogram, Metrics};

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rand::SeedableRng;
use revmatch_sat::{SatOptions, SolveStats, SolverBackend};

use crate::engine::{
    EngineJob, EnumerateJob, IdentifyJob, JobKind, JobReport, JobSpec, QuantumAlgorithm,
    QuantumPathJob, SatEquivalenceJob,
};
use crate::enumerate::{sweep_family, sweep_family_dpll, FamilyMiter, WitnessFamily};
use crate::error::MatchError;
use crate::identify::{identify_equivalence_with_oracles, IdentifyOptions};
use crate::matchers::{
    solve_promise_named, InverseAvailability, MatcherConfig, MatcherRegistry, Path, ProblemOracles,
};
use crate::miter::{check_witness_sat_budgeted_with, MiterEncoding, MiterVerdict};
use crate::observe::{Detail, JobTiming, SpanRecord, Stage, TraceConfig, Tracer};
use crate::oracle::Oracle;
use crate::verify::VerifyMode;
use crate::witness::MatchWitness;
use cache::ShardCaches;
use queue::ShardedQueue;

/// SplitMix64 increment used to whiten per-job seed indices; shared with
/// [`crate::engine`] so both paths derive identical seeds.
const SEED_WHITENER: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the RNG seed for the `index`-th job of a stream rooted at
/// `base` — independent of shard placement and worker count.
///
/// [`crate::MatchEngine::solve_batch`] seeds job `i` with
/// `job_seed(batch_seed, i)`; submitting the same jobs through
/// [`MatchService::submit_seeded`] with these seeds reproduces its
/// witnesses and query counts exactly.
pub fn job_seed(base: u64, index: u64) -> u64 {
    base ^ index.wrapping_mul(SEED_WHITENER)
}

/// Configuration for a [`MatchService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker shards (threads). Defaults to
    /// `available_parallelism`.
    pub shards: usize,
    /// Intake capacity **per shard lane**; total capacity is
    /// `shards × queue_capacity`. Defaults to 64.
    pub queue_capacity: usize,
    /// Matcher tuning shared by every worker.
    pub matcher: MatcherConfig,
    /// Eagerly compile oracles into dense tables ([`Oracle::precompiled`]),
    /// memoized per worker in a table LRU.
    pub precompile: bool,
    /// Base seed for [`MatchService::submit`]'s derived per-job seeds.
    pub seed: u64,
    /// SAT backend for jobs requesting miter verification
    /// ([`EngineJob::with_sat_verification`]). CDCL (the default) gets
    /// per-worker solver reuse; DPLL is stateless and kept for
    /// differential runs.
    pub solver_backend: SolverBackend,
    /// Decision + conflict budget per miter verification; exhausting it
    /// yields an explicit [`MiterVerdict::Unknown`] instead of stalling a
    /// worker shard.
    pub miter_budget: usize,
    /// CDCL feature set (LBD tiers, inprocessing, XOR/Gauss) applied to
    /// every worker-cached solver. Defaults to the process-wide
    /// selection ([`SatOptions::active`]: override > `REVMATCH_SAT_OPTS`
    /// env > all on); an explicit [`ServiceConfig::with_sat_opts`] pin
    /// wins over both.
    pub sat_opts: SatOptions,
    /// Span tracing: an explicit [`ServiceConfig::with_trace`] pin wins,
    /// the default defers to the `REVMATCH_TRACE` environment variable
    /// ([`TraceConfig::from_env`]), and unset means off — an untraced
    /// service allocates no recorder at all.
    pub trace: TraceConfig,
}

/// Default per-verification search budget: generous enough for complete
/// width-14–16 verdicts on CDCL, while still bounding a worker's worst
/// case to well under a second.
pub const DEFAULT_MITER_BUDGET: usize = 2_000_000;

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 64,
            matcher: MatcherConfig::default(),
            precompile: true,
            seed: 0,
            solver_backend: SolverBackend::default(),
            miter_budget: DEFAULT_MITER_BUDGET,
            sat_opts: SatOptions::active(),
            trace: TraceConfig::from_env(),
        }
    }
}

impl ServiceConfig {
    /// Overrides the shard count (clamped to at least 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the per-lane intake capacity (clamped to at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the matcher tuning.
    #[must_use]
    pub fn with_matcher(mut self, matcher: MatcherConfig) -> Self {
        self.matcher = matcher;
        self
    }

    /// Enables or disables dense-table oracle precompilation.
    #[must_use]
    pub fn with_precompiled_oracles(mut self, precompile: bool) -> Self {
        self.precompile = precompile;
        self
    }

    /// Sets the base seed for derived per-job seeds.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Picks the SAT backend for miter-verified jobs.
    #[must_use]
    pub fn with_solver_backend(mut self, backend: SolverBackend) -> Self {
        self.solver_backend = backend;
        self
    }

    /// Overrides the per-verification miter budget (clamped to ≥ 1).
    #[must_use]
    pub fn with_miter_budget(mut self, budget: usize) -> Self {
        self.miter_budget = budget.max(1);
        self
    }

    /// Pins the CDCL feature set for every worker-cached solver,
    /// overriding the process-wide selection (`REVMATCH_SAT_OPTS` /
    /// [`revmatch_sat::set_sat_opts_override`]). Any combination is
    /// verdict-identical; the options trade raw speed for bookkeeping.
    #[must_use]
    pub fn with_sat_opts(mut self, opts: SatOptions) -> Self {
        self.sat_opts = opts;
        self
    }

    /// Pins the span-tracing configuration, overriding the
    /// `REVMATCH_TRACE` environment default (see [`TraceConfig`];
    /// `TraceConfig::off()` pins tracing off even when the env enables
    /// it).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Pins every quantum-path job to one simulation backend, overriding
    /// both the `REVMATCH_QBACKEND` process override and the
    /// per-algorithm auto policy (stabilizer for Simon, sparse for swap
    /// tests). Jobs whose width exceeds the pinned backend's capacity
    /// complete with a clean error instead of falling back.
    #[must_use]
    pub fn with_quantum_backend(mut self, backend: revmatch_quantum::QuantumBackend) -> Self {
        self.matcher.quantum_backend = Some(backend);
        self
    }
}

/// State shared between a ticket and the worker resolving it.
#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<JobReport>>,
    done: Condvar,
}

/// Completion handle for one accepted job.
///
/// Returned by the `submit` family; resolves to the job's [`JobReport`]
/// via [`JobTicket::wait`]. Tickets outlive the service — a report
/// produced before shutdown can be claimed after it.
#[derive(Debug)]
pub struct JobTicket {
    id: u64,
    state: Arc<TicketState>,
}

impl JobTicket {
    /// The job's accept index (also the index used for derived seeding).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the job has finished (its report is ready).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().expect("ticket lock").is_some()
    }

    /// Blocks until the job completes and returns its report.
    pub fn wait(self) -> JobReport {
        let mut slot = self.state.slot.lock().expect("ticket lock");
        loop {
            if let Some(report) = slot.take() {
                return report;
            }
            slot = self.state.done.wait(slot).expect("ticket wait");
        }
    }
}

/// Result of a non-blocking [`MatchService::submit`].
#[derive(Debug)]
#[must_use = "a rejected job is handed back inside QueueFull"]
pub enum SubmitOutcome {
    /// The job was accepted; redeem the ticket for its report.
    Enqueued(JobTicket),
    /// Every intake lane is full; the job is returned untouched.
    QueueFull(JobSpec),
}

impl SubmitOutcome {
    /// Whether the job was accepted.
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Self::Enqueued(_))
    }

    /// The ticket, if the job was accepted.
    pub fn ticket(self) -> Option<JobTicket> {
        match self {
            Self::Enqueued(t) => Some(t),
            Self::QueueFull(_) => None,
        }
    }
}

/// One queued unit of work.
#[derive(Debug)]
struct Request {
    /// The job's accept index (drives derived seeding and trace
    /// sampling; matches the ticket's [`JobTicket::id`]).
    id: u64,
    job: JobSpec,
    seed: u64,
    accepted_at: Instant,
    ticket: Arc<TicketState>,
}

/// Per-job observation state threaded through the `execute_*` paths: the
/// identity needed to emit spans plus the facts the executors discover
/// along the way (cache behavior, the substrate that did the work).
struct JobObs {
    /// Accept index of the job being executed.
    id: u64,
    /// The executing worker shard (the span ring to record into).
    shard: usize,
    /// Whether this job is trace-sampled (false with tracing off).
    traced: bool,
    /// Dense-table cache hits across the job's oracles.
    table_hits: u64,
    /// Whether any oracle was served from the table cache.
    cache_hit: bool,
    /// Substrate that executed the job (kernel / SAT / quantum backend),
    /// stamped by the executor for the execute span's label.
    detail: Detail,
}

impl JobObs {
    fn new(id: u64, shard: usize, traced: bool) -> Self {
        Self {
            id,
            shard,
            traced,
            table_hits: 0,
            cache_hit: false,
            detail: Detail::NONE,
        }
    }
}

/// State shared by the service handle and its workers.
#[derive(Debug)]
struct Shared {
    intake: ShardedQueue<Request>,
    metrics: Metrics,
    matcher: MatcherConfig,
    precompile: bool,
    solver_backend: SolverBackend,
    miter_budget: usize,
    sat_opts: SatOptions,
    /// Span recorder; `None` when tracing is off, so the cold path costs
    /// one pointer check per job.
    tracer: Option<Tracer>,
    /// Accepted-but-unfinished jobs, with a condvar for [`MatchService::drain`].
    in_flight: Mutex<usize>,
    idle: Condvar,
}

impl Shared {
    /// Wraps a circuit in an oracle, going through the worker's
    /// kind-keyed dense-table cache when precompilation is on. A cache
    /// miss that compiles a table records the compile's own latency in
    /// the `table_compile` histogram (warm-up cost, visible under
    /// load); a traced job additionally emits a `cache_probe` span with
    /// the `table_compile` span nested inside it.
    fn oracle(
        &self,
        kind: JobKind,
        circuit: revmatch_circuit::Circuit,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> Oracle {
        if self.precompile {
            let start = Instant::now();
            let (oracle, probe) = caches.oracle_for(kind, circuit);
            let probe_dur = start.elapsed();
            if probe.hit {
                obs.table_hits += 1;
                obs.cache_hit = true;
            }
            if let Some(compile) = probe.compile {
                self.metrics
                    .record_table_compile(compile.as_micros() as u64);
            }
            if obs.traced {
                if let Some(tracer) = &self.tracer {
                    tracer.record(
                        obs.shard,
                        obs.id,
                        Stage::CacheProbe,
                        kind,
                        Detail::NONE,
                        start,
                        probe_dur,
                    );
                    if let Some(compile) = probe.compile {
                        // End-aligned within the probe: the compile is
                        // the tail of the miss path, so the span nests
                        // under cache_probe in the trace view.
                        let lead = probe_dur.saturating_sub(compile);
                        tracer.record(
                            obs.shard,
                            obs.id,
                            Stage::TableCompile,
                            kind,
                            Detail::active_kernel(),
                            start + lead,
                            compile,
                        );
                    }
                }
            }
            oracle
        } else {
            Oracle::new(circuit)
        }
    }

    /// Executes one job with a deterministic RNG; the worker body. Takes
    /// the job by value — the circuits move into the oracles instead of
    /// being cloned a second time. `caches` is the worker's private
    /// memoization state (dense tables, miter solvers). Table reuse
    /// never changes results; solver reuse never changes a *completed*
    /// verdict, though under a tight miter budget a warm solver may
    /// resolve a formula a cold one left `Unknown` (see
    /// [`cache`](self) module docs).
    fn execute(
        &self,
        job: JobSpec,
        seed: u64,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let report = match job {
            JobSpec::Promise(job) => self.execute_promise(job, &mut rng, caches, obs),
            JobSpec::Identify(job) => self.execute_identify(job, &mut rng, caches, obs),
            JobSpec::QuantumPath(job) => self.execute_quantum(job, &mut rng, caches, obs),
            JobSpec::SatEquivalence(job) => self.execute_sat(job, caches, obs),
            JobSpec::Enumerate(job) => self.execute_enumerate(job, caches, obs),
        };
        self.metrics.record_table_cache_hits(obs.table_hits);
        report
    }

    /// The original promise workload: registry dispatch plus optional
    /// SAT verification of the recovered witness.
    fn execute_promise(
        &self,
        job: EngineJob,
        rng: &mut rand::rngs::StdRng,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Promise;
        obs.detail = Detail::active_kernel();
        let equivalence = job.equivalence;
        let c1 = self.oracle(kind, job.c1, caches, obs);
        let c2 = self.oracle(kind, job.c2, caches, obs);
        let (c1_inv, c2_inv) = if job.with_inverses {
            (
                Some(self.oracle(kind, c1.circuit().inverse(), caches, obs)),
                Some(self.oracle(kind, c2.circuit().inverse(), caches, obs)),
            )
        } else {
            (None, None)
        };
        let oracles = ProblemOracles {
            c1: &c1,
            c2: &c2,
            c1_inv: c1_inv.as_ref(),
            c2_inv: c2_inv.as_ref(),
        };
        let report = solve_promise_named(equivalence, &oracles, &self.matcher, rng);
        let (witness, rounds) = match report {
            Ok((entry, r)) => {
                self.metrics.record_entry_completion(entry);
                (Ok(r.witness), r.rounds)
            }
            Err(e) => (Err(e), 0),
        };
        let miter = if job.sat_verify {
            witness
                .as_ref()
                .ok()
                .map(|w| self.verify_witness(kind, c1.circuit(), c2.circuit(), w, caches))
        } else {
            None
        };
        JobReport {
            kind,
            witness,
            queries: oracles.total_queries(),
            charged_queries: oracles.total_queries(),
            rounds,
            identified: None,
            witness_count: None,
            miter,
            timing: JobTiming::default(),
        }
    }

    /// The §3 non-promise workflow: walk the lattice for the minimal
    /// class, with derived inverses, charging the whole walk.
    fn execute_identify(
        &self,
        job: IdentifyJob,
        rng: &mut rand::rngs::StdRng,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Identify;
        obs.detail = Detail::active_kernel();
        let c1 = job.c1;
        let c2 = job.c2;
        let (o1, o2, o1_inv, o2_inv) = (
            self.oracle(kind, c1.clone(), caches, obs),
            self.oracle(kind, c2.clone(), caches, obs),
            self.oracle(kind, c1.inverse(), caches, obs),
            self.oracle(kind, c2.inverse(), caches, obs),
        );
        let options = IdentifyOptions {
            config: self.matcher.clone(),
            allow_brute_force: job.allow_brute_force,
            verify: VerifyMode::Exhaustive,
        };
        let outcome =
            identify_equivalence_with_oracles(&c1, &c2, &o1, &o2, &o1_inv, &o2_inv, &options, rng);
        let spent = o1.queries() + o2.queries() + o1_inv.queries() + o2_inv.queries();
        let (witness, identified, rounds) = match outcome {
            Ok(Some(id)) => (
                Ok(id.witness),
                Some(id.equivalence),
                id.classes_tried as u64,
            ),
            Ok(None) => (Err(MatchError::NoEquivalence), None, 0),
            Err(e) => (Err(e), None, 0),
        };
        JobReport {
            kind,
            witness,
            queries: spent,
            charged_queries: spent,
            rounds,
            identified,
            witness_count: None,
            miter: None,
            timing: JobTiming::default(),
        }
    }

    /// The inverse-free quantum path: registry lookup on
    /// `(equivalence, None, Path::Quantum)`, with the Simon specialist
    /// selected by name. The simulation backend is resolved per
    /// algorithm (see [`MatcherConfig::simon_backend`] and
    /// [`MatcherConfig::swap_test_backend`]) and counted per job in the
    /// `revmatch_quantum_backend_jobs_total` metric. Oracles go through
    /// the worker's dense-table cache: Simon's classical oracle queries
    /// and sparse/dense quantum probes all route window evaluations
    /// through a compiled table when one exists.
    fn execute_quantum(
        &self,
        job: QuantumPathJob,
        rng: &mut rand::rngs::StdRng,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Quantum;
        let registry = MatcherRegistry::global();
        let matcher = match job.algorithm {
            QuantumAlgorithm::SwapTest => {
                registry.lookup(job.equivalence, InverseAvailability::None, Path::Quantum)
            }
            QuantumAlgorithm::Simon => registry
                .lookup_named("n-i/simon")
                .filter(|m| m.equivalence() == job.equivalence),
        };
        let backend = match job.algorithm {
            QuantumAlgorithm::SwapTest => self.matcher.swap_test_backend(),
            QuantumAlgorithm::Simon => self.matcher.simon_backend(),
        };
        self.metrics.record_quantum_backend(backend);
        obs.detail = Detail::quantum(backend);
        let Some(matcher) = matcher else {
            return JobReport {
                kind,
                witness: Err(MatchError::Intractable {
                    equivalence: format!("{} on the quantum path ({:?})", job.equivalence, {
                        job.algorithm
                    }),
                }),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            };
        };
        let c1 = self.oracle(kind, job.c1, caches, obs);
        let c2 = self.oracle(kind, job.c2, caches, obs);
        let oracles = ProblemOracles::without_inverses(&c1, &c2);
        let entry = matcher.name();
        match matcher.run(&oracles, &self.matcher, rng) {
            Ok(report) => {
                self.metrics.record_entry_completion(entry);
                JobReport {
                    kind,
                    witness: Ok(report.witness),
                    queries: report.queries,
                    charged_queries: report.charged_queries,
                    rounds: report.rounds,
                    identified: None,
                    witness_count: None,
                    miter: None,
                    timing: JobTiming::default(),
                }
            }
            Err(e) => JobReport {
                kind,
                witness: Err(e),
                queries: oracles.total_queries(),
                charged_queries: oracles.total_queries(),
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            },
        }
    }

    /// The direct white-box verdict: fold the claimed witness (identity
    /// when absent) into a miter and solve it on the configured backend
    /// through the worker's solver cache.
    fn execute_sat(
        &self,
        job: SatEquivalenceJob,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Sat;
        obs.detail = Detail::solver(self.solver_backend);
        let width = job.c1.width();
        let witness = job.witness.unwrap_or_else(|| MatchWitness::identity(width));
        if job.c2.width() != width {
            return JobReport {
                kind,
                witness: Err(MatchError::WidthMismatch {
                    left: width,
                    right: job.c2.width(),
                }),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            };
        }
        if witness.width() != width {
            return JobReport {
                kind,
                witness: Err(MatchError::WidthMismatch {
                    left: width,
                    right: witness.width(),
                }),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            };
        }
        let verdict = self.verify_witness(kind, &job.c1, &job.c2, &witness, caches);
        let witness = match &verdict {
            MiterVerdict::Equivalent => Ok(witness),
            MiterVerdict::Counterexample { .. } => Err(MatchError::PromiseViolated),
            MiterVerdict::Unknown { .. } => Err(MatchError::Inconclusive),
        };
        JobReport {
            kind,
            witness,
            queries: 0,
            charged_queries: 0,
            rounds: 0,
            identified: None,
            witness_count: None,
            miter: Some(verdict),
            timing: JobTiming::default(),
        }
    }

    /// Witness enumeration: sweep the whole candidate family under
    /// assumptions on one CDCL solver. The solver is cached per
    /// `(kind, family formula)` — a repeated family re-enters a solver
    /// whose learned clauses already cover every candidate, so warm
    /// re-enumerations answer mostly by propagation. (Assumptions never
    /// poison the cache; this is why the service sweeps instead of
    /// running blocking-clause mode.) The DPLL backend falls back to the
    /// stateless per-candidate sweep for differential runs.
    fn execute_enumerate(
        &self,
        job: EnumerateJob,
        caches: &mut ShardCaches,
        obs: &mut JobObs,
    ) -> JobReport {
        let kind = JobKind::Enumerate;
        obs.detail = Detail::solver(self.solver_backend);
        let family = job.family;
        let outcome = FamilyMiter::build(&job.c1, &job.c2, family).and_then(|miter| {
            match self.solver_backend {
                SolverBackend::Cdcl => {
                    let (solver, hit) =
                        caches.solver_for_cnf(kind, &miter.cnf, || miter.input_hint());
                    if hit {
                        self.metrics.record_solver_cache_hit();
                    }
                    let (xors0, inproc0) = (solver.xors_extracted(), solver.inprocess_micros());
                    let swept = sweep_family(solver, &miter, Some(self.miter_budget));
                    self.metrics.record_sat_core(
                        solver.glue_clauses() as u64,
                        solver.num_learned() as u64,
                        (solver.xors_extracted() - xors0) as u64,
                        solver.inprocess_micros() - inproc0,
                    );
                    swept
                }
                // Stateless, but under the same per-solve budget: a hard
                // family must surface as Inconclusive, not pin a shard.
                SolverBackend::Dpll => sweep_family_dpll(&miter, Some(self.miter_budget)),
            }
        });
        match outcome {
            Ok(found) => {
                let count = found.count();
                let solves = found.solves;
                self.metrics.record_enumeration(count);
                self.metrics
                    .record_entry_completion(enumeration_entry_name(family));
                let witness = found
                    .witnesses
                    .into_iter()
                    .next()
                    .ok_or(MatchError::NoEquivalence);
                JobReport {
                    kind,
                    witness,
                    queries: 0,
                    charged_queries: 0,
                    rounds: solves,
                    identified: None,
                    witness_count: Some(count),
                    miter: None,
                    timing: JobTiming::default(),
                }
            }
            Err(e) => JobReport {
                kind,
                witness: Err(e),
                queries: 0,
                charged_queries: 0,
                rounds: 0,
                identified: None,
                witness_count: None,
                miter: None,
                timing: JobTiming::default(),
            },
        }
    }

    /// Proves (or refutes) a recovered witness on the configured SAT
    /// backend. CDCL runs warm through the worker's solver cache (keyed
    /// by `(kind, formula)`): the same miter family re-enters a solver
    /// that already holds the learned refutation.
    fn verify_witness(
        &self,
        kind: JobKind,
        c1: &revmatch_circuit::Circuit,
        c2: &revmatch_circuit::Circuit,
        witness: &MatchWitness,
        caches: &mut ShardCaches,
    ) -> MiterVerdict {
        let verdict = match self.solver_backend {
            SolverBackend::Dpll => {
                check_witness_sat_budgeted_with(c1, c2, witness, self.miter_budget, {
                    SolverBackend::Dpll
                })
                .expect("a solved job's circuits share a width")
            }
            SolverBackend::Cdcl => {
                let miter = MiterEncoding::build(c1, c2, witness)
                    .expect("a solved job's circuits share a width");
                let (solver, hit) = caches.solver_for(kind, &miter);
                if hit {
                    self.metrics.record_solver_cache_hit();
                }
                let (xors0, inproc0) = (solver.xors_extracted(), solver.inprocess_micros());
                solver.set_budget(Some(self.miter_budget));
                let outcome = solver.solve_budgeted();
                let stats = SolveStats {
                    decisions: solver.decisions(),
                    conflicts: solver.conflicts(),
                    propagations: solver.propagations(),
                };
                self.metrics.record_sat_core(
                    solver.glue_clauses() as u64,
                    solver.num_learned() as u64,
                    (solver.xors_extracted() - xors0) as u64,
                    solver.inprocess_micros() - inproc0,
                );
                miter.verdict_from(outcome, stats)
            }
        };
        self.metrics.record_sat_verify(verdict.is_unknown());
        verdict
    }

    /// Worker main loop for shard `shard`: pop, time every lifecycle
    /// stage, execute, stamp the report's [`JobTiming`], resolve the
    /// ticket, and (for sampled jobs) emit the `queue_wait → dequeue →
    /// execute → report` spans. Timing measurement is unconditional — a
    /// handful of `Instant` reads per job — so every report carries its
    /// breakdown even with tracing off; only span *recording* is gated.
    fn run_worker(&self, shard: usize) {
        let mut caches = ShardCaches::new(self.sat_opts);
        let mut idle_since = Instant::now();
        while let Some((req, lane)) = self.intake.pop(shard, |lane, depth| {
            self.metrics.record_dequeue(lane, depth)
        }) {
            let dequeued_at = Instant::now();
            self.metrics.record_shard_idle(
                shard,
                dequeued_at
                    .saturating_duration_since(idle_since)
                    .as_micros() as u64,
            );
            self.metrics.record_execution(shard, lane);
            let accepted_at = req.accepted_at;
            let queue_wait = dequeued_at.saturating_duration_since(accepted_at);
            let kind = req.job.kind();
            let traced = self.tracer.as_ref().is_some_and(|t| t.traced(req.id));
            let mut obs = JobObs::new(req.id, shard, traced);
            let exec_start = Instant::now();
            let mut report = self.execute(req.job, req.seed, &mut caches, &mut obs);
            let exec_dur = exec_start.elapsed();
            report.timing = JobTiming {
                queue_wait_us: queue_wait.as_micros() as u64,
                exec_us: exec_dur.as_micros() as u64,
                cache_hit: obs.cache_hit,
            };
            self.metrics.record_stage_timing(
                kind,
                report.timing.queue_wait_us,
                report.timing.exec_us,
            );
            let latency = accepted_at.elapsed().as_micros() as u64;
            let failed = job_failed(&report);
            self.metrics
                .record_completion(report.kind, failed, report.queries, latency);
            let report_start = Instant::now();
            *req.ticket.slot.lock().expect("ticket lock") = Some(report);
            req.ticket.done.notify_all();
            // Spans land before the in-flight count drops so a
            // `drain()` returning implies every completed job's spans
            // are already in the rings — `trace_spans` after a drain is
            // a consistent cut.
            if traced {
                if let Some(tracer) = &self.tracer {
                    let d = Detail::NONE;
                    tracer.record(shard, req.id, Stage::QueueWait, kind, d, accepted_at, {
                        queue_wait
                    });
                    tracer.record(
                        shard,
                        req.id,
                        Stage::Dequeue,
                        kind,
                        d,
                        dequeued_at,
                        exec_start.saturating_duration_since(dequeued_at),
                    );
                    tracer.record(
                        shard,
                        req.id,
                        Stage::Execute,
                        kind,
                        obs.detail,
                        exec_start,
                        exec_dur,
                    );
                    tracer.record(
                        shard,
                        req.id,
                        Stage::Report,
                        kind,
                        d,
                        report_start,
                        report_start.elapsed(),
                    );
                }
            }
            let mut in_flight = self.in_flight.lock().expect("in_flight lock");
            *in_flight -= 1;
            if *in_flight == 0 {
                self.idle.notify_all();
            }
            drop(in_flight);
            idle_since = Instant::now();
            self.metrics.record_shard_busy(
                shard,
                idle_since
                    .saturating_duration_since(dequeued_at)
                    .as_micros() as u64,
            );
        }
    }
}

/// The stable per-entry metric name of an enumeration family. Four of
/// the five match the registry's `*/sat-enumerate` promise-path entries
/// by name; `n-n/sat-enumerate` follows the same convention but has no
/// registry entry — N-N is UNIQUE-SAT-hard, so the registry must not
/// offer it as a promise matcher, while the enumeration job kind may
/// still sweep it completely at bounded width.
fn enumeration_entry_name(family: WitnessFamily) -> &'static str {
    match family {
        WitnessFamily::InputNegation => "n-i/sat-enumerate",
        WitnessFamily::OutputNegation => "i-n/sat-enumerate",
        WitnessFamily::BothNegations => "n-n/sat-enumerate",
        WitnessFamily::InputPermutation => "p-i/sat-enumerate",
        WitnessFamily::OutputPermutation => "i-p/sat-enumerate",
    }
}

/// Whether a completed report counts as a failure in the metrics.
///
/// Per kind: a promise/quantum job fails when no witness came back, or
/// when a requested miter verification *refuted* the witness (the
/// matcher's answer was wrong). An identification job fails only on a
/// real error — "no class explains the pair" is a valid answer. A SAT
/// job fails only when the verdict is `Unknown` (budget ran out); a
/// counterexample is a definitive, successful verdict. An enumeration
/// job fails on a real error (budget exhaustion, unsupported width) —
/// a zero witness count is a complete, valid answer.
fn job_failed(report: &JobReport) -> bool {
    match report.kind {
        JobKind::Promise | JobKind::Quantum => {
            report.witness.is_err()
                || matches!(report.miter, Some(MiterVerdict::Counterexample { .. }))
        }
        JobKind::Identify | JobKind::Enumerate => {
            matches!(&report.witness, Err(e) if !matches!(e, MatchError::NoEquivalence))
        }
        JobKind::Sat => !matches!(
            report.miter,
            Some(MiterVerdict::Equivalent) | Some(MiterVerdict::Counterexample { .. })
        ),
    }
}

/// A long-lived sharded matching service — see the [module docs](self).
#[derive(Debug)]
pub struct MatchService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    base_seed: u64,
}

impl MatchService {
    /// Spawns the worker shards and opens the intake queue.
    pub fn start(config: ServiceConfig) -> Self {
        let shards = config.shards.max(1);
        let shared = Arc::new(Shared {
            intake: ShardedQueue::new(shards, config.queue_capacity.max(1)),
            metrics: Metrics::new(shards),
            matcher: config.matcher,
            precompile: config.precompile,
            solver_backend: config.solver_backend,
            miter_budget: config.miter_budget.max(1),
            sat_opts: config.sat_opts,
            tracer: config
                .trace
                .enabled()
                .then(|| Tracer::new(config.trace, shards)),
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
        });
        let workers = (0..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("revmatch-shard-{shard}"))
                    .spawn(move || shared.run_worker(shard))
                    .expect("spawn worker shard")
            })
            .collect();
        Self {
            shared,
            workers,
            next_id: AtomicU64::new(0),
            base_seed: config.seed,
        }
    }

    /// Worker-shard count.
    pub fn shards(&self) -> usize {
        self.shared.intake.shards()
    }

    /// Jobs currently queued across every intake lane.
    pub fn queue_depth(&self) -> usize {
        self.shared.intake.total_depth()
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The metrics registry rendered in the Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render()
    }

    /// The span recorder, when tracing is enabled (`None` otherwise).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.shared.tracer.as_ref()
    }

    /// Drains every retained span, start-ordered — empty with tracing
    /// off. See [`Tracer::spans`]. A job's worker-side spans land
    /// before it leaves the in-flight count, so [`drain`](Self::drain)
    /// followed by this call is a consistent cut; a ticket resolving is
    /// *not* yet that guarantee.
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.tracer().map(Tracer::spans).unwrap_or_default()
    }

    /// The retained spans serialized as Chrome trace-event JSON
    /// (Perfetto-loadable); `None` with tracing off.
    pub fn trace_json(&self) -> Option<String> {
        self.tracer()
            .map(|t| crate::observe::chrome_trace_json(&t.spans(), self.shards()))
    }

    /// Routes a job to its preferred shard by `(width, kind,
    /// equivalence)`, so same-shaped work of the same family lands on
    /// the same shard and its kind-keyed caches stay hot.
    fn route(&self, job: &JobSpec) -> usize {
        let mut h = DefaultHasher::new();
        job.width().hash(&mut h);
        job.kind().hash(&mut h);
        job.equivalence().hash(&mut h);
        (h.finish() % self.shards() as u64) as usize
    }

    /// Allocates the next submit index and builds the request/ticket pair.
    /// `seed: None` derives the job seed from the service seed and the
    /// allocated index (so a fixed submit sequence replays exactly).
    fn make_request(&self, job: JobSpec, seed: Option<u64>) -> (Request, JobTicket) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let seed = seed.unwrap_or_else(|| job_seed(self.base_seed, id));
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        (
            Request {
                id,
                job,
                seed,
                // Provisional; re-stamped under the lane lock at the
                // moment the request actually enters the intake.
                accepted_at: Instant::now(),
                ticket: Arc::clone(&state),
            },
            JobTicket { id, state },
        )
    }

    /// Records the producer-side `submit` span (routing + enqueue) for a
    /// sampled accepted job, into the tracer's dedicated submit ring.
    fn record_submit_span(&self, id: u64, kind: JobKind, start: Instant) {
        if let Some(tracer) = &self.shared.tracer {
            if tracer.traced(id) {
                tracer.record(
                    tracer.submit_ring(),
                    id,
                    Stage::Submit,
                    kind,
                    Detail::NONE,
                    start,
                    start.elapsed(),
                );
            }
        }
    }

    /// Non-blocking submit with a seed derived from the service seed and
    /// the job's submit index (rejected submits consume an index too).
    /// Accepts any [`JobSpec`] kind (a bare [`EngineJob`] converts to a
    /// promise job).
    pub fn submit(&self, job: impl Into<JobSpec>) -> SubmitOutcome {
        self.submit_inner(job.into(), None)
    }

    /// Non-blocking submit with an explicit per-job seed: the job's
    /// outcome depends only on `(job, seed)`, never on placement.
    pub fn submit_seeded(&self, job: impl Into<JobSpec>, seed: u64) -> SubmitOutcome {
        self.submit_inner(job.into(), Some(seed))
    }

    fn submit_inner(&self, job: JobSpec, seed: Option<u64>) -> SubmitOutcome {
        let submit_start = Instant::now();
        let kind = job.kind();
        let preferred = self.route(&job);
        {
            let mut in_flight = self.shared.in_flight.lock().expect("in_flight lock");
            *in_flight += 1;
        }
        let (request, ticket) = self.make_request(job, seed);
        // The accept hook runs under the lane lock, before the job is
        // poppable: the submitted counter stays monotonic yet can never
        // trail a completion, and the accept timestamp is stamped at the
        // true enqueue moment.
        let metrics = &self.shared.metrics;
        match self
            .shared
            .intake
            .try_push(preferred, request, |req, lane, depth| {
                req.accepted_at = Instant::now();
                metrics.record_accept(lane, depth);
            }) {
            Ok(_) => {
                self.record_submit_span(ticket.id(), kind, submit_start);
                SubmitOutcome::Enqueued(ticket)
            }
            Err(request) => {
                let mut in_flight = self.shared.in_flight.lock().expect("in_flight lock");
                *in_flight -= 1;
                if *in_flight == 0 {
                    self.shared.idle.notify_all();
                }
                drop(in_flight);
                self.shared.metrics.record_reject();
                SubmitOutcome::QueueFull(request.job)
            }
        }
    }

    /// Blocking submit (derived seed): waits for intake space instead of
    /// rejecting. Accepts any [`JobSpec`] kind.
    pub fn submit_wait(&self, job: impl Into<JobSpec>) -> JobTicket {
        self.submit_wait_inner(job.into(), None)
    }

    /// Blocking submit with an explicit per-job seed.
    pub fn submit_wait_seeded(&self, job: impl Into<JobSpec>, seed: u64) -> JobTicket {
        self.submit_wait_inner(job.into(), Some(seed))
    }

    fn submit_wait_inner(&self, job: JobSpec, seed: Option<u64>) -> JobTicket {
        let submit_start = Instant::now();
        let kind = job.kind();
        let preferred = self.route(&job);
        {
            let mut in_flight = self.shared.in_flight.lock().expect("in_flight lock");
            *in_flight += 1;
        }
        let (request, ticket) = self.make_request(job, seed);
        // As in `submit_inner`: the job is only counted and timestamped
        // at the moment it actually enters a lane — time spent blocked on
        // a full intake is not billed to the job's latency.
        let metrics = &self.shared.metrics;
        match self
            .shared
            .intake
            .push_wait(preferred, request, |req, lane, depth| {
                req.accepted_at = Instant::now();
                metrics.record_accept(lane, depth);
            }) {
            Ok(_) => {
                self.record_submit_span(ticket.id(), kind, submit_start);
                ticket
            }
            Err(_) => unreachable!("intake is open for the service's lifetime"),
        }
    }

    /// Blocks until every accepted job has completed. The service remains
    /// open: submits racing with `drain` extend the wait.
    pub fn drain(&self) {
        let mut in_flight = self.shared.in_flight.lock().expect("in_flight lock");
        while *in_flight > 0 {
            in_flight = self.shared.idle.wait(in_flight).expect("drain wait");
        }
    }

    /// Pauses the worker shards (they finish the job in hand and park).
    /// Submits still enqueue, so a paused service exposes backpressure
    /// deterministically — used for rebalancing windows and tests.
    pub fn pause(&self) {
        self.shared.intake.pause();
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        self.shared.intake.resume();
    }

    /// Graceful shutdown: closes the intake, completes the backlog, joins
    /// the workers. Outstanding tickets resolve before this returns.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.shared.intake.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MatchService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}
