//! The adaptive shard rebalancer.
//!
//! Jobs route to shards by a static hash of `(width, kind, equivalence)`
//! so same-shaped work shares warm caches — but a skewed mix can hash
//! several hot lanes onto one shard. Work stealing keeps the other
//! workers busy, yet every steal executes on a shard whose dense-table
//! and solver caches are cold for that shape, so sustained stealing is
//! both a load-imbalance signal *and* a throughput leak.
//!
//! [`super::MatchService::rebalance`] closes the loop using only
//! counters the metrics registry already keeps:
//!
//! 1. each call snapshots the per-shard `stolen_from` / `busy` / `idle`
//!    counters and computes the deltas since the previous call (one call
//!    = one observation window);
//! 2. the **victim** is the shard others stole from most this window; it
//!    must have lost at least [`RebalanceConfig::min_steals`] jobs, for
//!    [`RebalanceConfig::sustain`] consecutive windows, to count as a
//!    sustained imbalance rather than a burst;
//! 3. the **beneficiary** is the shard that idled most this window;
//! 4. the victim's hottest routing key (most execute-µs since the last
//!    move, from the per-key heat table) is remapped to the beneficiary
//!    inside a [`super::MatchService::pause`]/`resume` window, so the
//!    route table flips while no worker is mid-pop.
//!
//! A move only redirects *future* submits — queued jobs drain where they
//! are — and never changes results: routing is a placement hint, and
//! job seeds are placement-independent by construction.

use crate::engine::JobKind;
use crate::equivalence::Equivalence;

/// Tuning for [`super::MatchService::rebalance`].
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Minimum jobs stolen *from* a shard within one observation window
    /// for it to qualify as the imbalance victim.
    pub min_steals: u64,
    /// Consecutive windows the same shard must qualify before a lane
    /// actually moves (hysteresis against bursts).
    pub sustain: u32,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            min_steals: 8,
            sustain: 2,
        }
    }
}

impl RebalanceConfig {
    /// Overrides the per-window steal threshold (clamped to ≥ 1).
    #[must_use]
    pub fn with_min_steals(mut self, min_steals: u64) -> Self {
        self.min_steals = min_steals.max(1);
        self
    }

    /// Overrides the sustained-window requirement (clamped to ≥ 1).
    #[must_use]
    pub fn with_sustain(mut self, sustain: u32) -> Self {
        self.sustain = sustain.max(1);
        self
    }
}

/// One lane move performed by the rebalancer: the `(width, kind,
/// equivalence)` routing key now prefers shard `to` instead of `from`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceMove {
    /// Circuit width of the moved lane.
    pub width: usize,
    /// Job kind of the moved lane.
    pub kind: JobKind,
    /// Equivalence of the moved lane (`None` for kinds that route
    /// without one).
    pub equivalence: Option<Equivalence>,
    /// The overloaded shard the lane was hashed to.
    pub from: usize,
    /// The under-utilized shard now preferred.
    pub to: usize,
}

/// Accumulated execution heat for one routing key since the last move.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LaneHeat {
    /// Jobs executed for this key.
    pub(crate) jobs: u64,
    /// Summed execute-stage µs for this key.
    pub(crate) exec_us: u64,
}

/// Window-to-window snapshot state for the rebalancer, owned by the
/// service behind a mutex (rebalancing is a single-caller control loop).
#[derive(Debug)]
pub(crate) struct RebalanceState {
    /// Per-shard `stolen_from` counter values at the last window edge.
    pub(crate) last_stolen_from: Vec<u64>,
    /// Per-shard idle-µs counter values at the last window edge.
    pub(crate) last_idle_us: Vec<u64>,
    /// The shard that qualified as victim last window, if any.
    pub(crate) streak_shard: Option<usize>,
    /// Consecutive windows that shard has qualified.
    pub(crate) streak: u32,
}

impl RebalanceState {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            last_stolen_from: vec![0; shards],
            last_idle_us: vec![0; shards],
            streak_shard: None,
            streak: 0,
        }
    }
}
