//! Cost-aware admission control for the intake queue.
//!
//! The intake lanes are FIFO, so without admission control one burst of
//! expensive jobs (a wide Simon round forced onto a dense backend, a
//! `2^n`-candidate enumeration sweep) parks every cheap promise job
//! behind seconds of queued work. [`Admission`] breaks that head-of-line
//! blocking with three pieces:
//!
//! * a **cost model**: an estimate of each job's execute-stage latency
//!   from `(kind, width)`, seeded from measured per-kind constants and
//!   continuously calibrated by an EWMA over the same execute samples
//!   that feed the `revmatch_exec_seconds{kind}` histograms;
//! * a **backlog gauge**: the summed cost estimate of every queued job,
//!   maintained under the lane locks so it tracks the intake exactly;
//! * an **overload policy**: while the backlog exceeds
//!   [`AdmissionConfig::overload_us`], expensive jobs (estimate ≥
//!   [`AdmissionConfig::expensive_us`]) are **deferred** into a side
//!   buffer (`revmatch_admission_requeued_total`) and re-injected by the
//!   workers once the backlog halves; when the buffer is full they are
//!   **shed** (`revmatch_admission_shed_total`,
//!   [`super::SubmitOutcome::Shed`]). Cheap jobs are never touched — the
//!   whole point is that they keep flowing.
//!
//! Deferral preserves the job's ticket and seed: a deferred job's report
//! is bit-identical to an immediately-admitted run, it just arrives
//! later. Shutdown executes still-deferred jobs inline so every ticket
//! resolves.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::engine::JobKind;

use super::Request;

/// Number of job kinds — sizes the per-kind cost tables.
const KINDS: usize = JobKind::ALL.len();

/// Cost-model width slots: widths are clamped to `0..=MAX_SLOT` so every
/// `(kind, width)` pair maps to a fixed atomic cell.
const MAX_SLOT: usize = 64;

/// Tuning for the admission controller. The defaults suit the 1-CPU
/// container the service is benchmarked on: ~100 ms of estimated queued
/// work per shard marks overload, and 2 ms separates "cheap" (promise
/// and friends at serving widths) from "expensive" (dense quantum
/// rounds, wide enumeration sweeps).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Estimated backlog (µs of execute time, summed over queued jobs,
    /// scaled by the shard count at service start) above which the
    /// service is overloaded.
    pub overload_us: u64,
    /// Estimated job cost (µs) at or above which a job counts as
    /// expensive and is deferred/shed under overload.
    pub expensive_us: u64,
    /// Capacity of the deferral buffer; an expensive job arriving under
    /// overload with the buffer full is shed.
    pub defer_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            overload_us: 100_000,
            expensive_us: 2_000,
            defer_capacity: 256,
        }
    }
}

impl AdmissionConfig {
    /// Overrides the per-shard overload threshold (µs of estimated
    /// backlog; clamped to ≥ 1).
    #[must_use]
    pub fn with_overload_us(mut self, overload_us: u64) -> Self {
        self.overload_us = overload_us.max(1);
        self
    }

    /// Overrides the expensive-job cost threshold (µs; clamped to ≥ 1).
    #[must_use]
    pub fn with_expensive_us(mut self, expensive_us: u64) -> Self {
        self.expensive_us = expensive_us.max(1);
        self
    }

    /// Overrides the deferral-buffer capacity (0 disables deferral: every
    /// expensive job under overload is shed outright).
    #[must_use]
    pub fn with_defer_capacity(mut self, capacity: usize) -> Self {
        self.defer_capacity = capacity;
        self
    }
}

/// Static cost seed for `(kind, width)` in µs of execute time, from the
/// measured per-kind figures in ROADMAP.md (promise ~60 µs at width 6;
/// Simon ≫ promise at equal width on the amplitude backends; enumeration
/// sweeps `2^n` candidates). The EWMA calibration replaces these within
/// a few completed jobs per cell — they only order the very first
/// admission decisions.
fn default_cost_us(kind: JobKind, width: usize) -> u64 {
    // (base µs at width 6, extra right-shifts per line above 6 in
    // eighths — 8 means "doubles every line", 4 "every two lines").
    let (base, eighths): (u64, u32) = match kind {
        JobKind::Promise => (60, 4),
        JobKind::Identify => (300, 4),
        JobKind::Quantum => (500, 8),
        JobKind::Sat => (250, 4),
        JobKind::Enumerate => (400, 8),
    };
    let extra = width.saturating_sub(6) as u32;
    base.saturating_mul(1u64 << (extra * eighths / 8).min(20))
}

/// The admission controller owned by one service — see the
/// [module docs](self).
#[derive(Debug)]
pub(crate) struct Admission {
    cfg: AdmissionConfig,
    /// EWMA cost estimate per `(kind, width)` cell, µs. Written with
    /// relaxed load/store — a lost update between concurrent workers
    /// re-converges on the next sample.
    est_us: Vec<AtomicU64>,
    /// Summed cost estimate of every job currently queued in the intake
    /// lanes (deferred jobs are excluded until re-injection).
    backlog_us: AtomicU64,
    /// Expensive jobs parked under overload, FIFO.
    deferred: Mutex<VecDeque<Request>>,
}

impl Admission {
    pub(crate) fn new(cfg: AdmissionConfig) -> Self {
        let est_us = (0..KINDS * (MAX_SLOT + 1))
            .map(|i| {
                let kind = JobKind::ALL[i / (MAX_SLOT + 1)];
                AtomicU64::new(default_cost_us(kind, i % (MAX_SLOT + 1)))
            })
            .collect();
        Self {
            cfg,
            est_us,
            backlog_us: AtomicU64::new(0),
            deferred: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    fn cell(&self, kind: JobKind, width: usize) -> &AtomicU64 {
        &self.est_us[kind.index() * (MAX_SLOT + 1) + width.min(MAX_SLOT)]
    }

    /// The current cost estimate for a `(kind, width)` job in µs.
    pub(crate) fn estimate_us(&self, kind: JobKind, width: usize) -> u64 {
        self.cell(kind, width).load(Ordering::Relaxed)
    }

    /// Calibrates the `(kind, width)` cell with one measured
    /// execute-stage sample (EWMA, 1/8 weight on the new sample — the
    /// same samples the `revmatch_exec_seconds{kind}` histogram records).
    pub(crate) fn observe(&self, kind: JobKind, width: usize, exec_us: u64) {
        let cell = self.cell(kind, width);
        let old = cell.load(Ordering::Relaxed);
        cell.store((old.saturating_mul(7) + exec_us) / 8, Ordering::Relaxed);
    }

    /// Adds an accepted job's estimated cost to the backlog gauge.
    /// Called from the queue's accept hook, under the lane lock, so it
    /// can never race the matching [`Self::note_dequeued`].
    pub(crate) fn note_enqueued(&self, cost_us: u64) {
        self.backlog_us.fetch_add(cost_us, Ordering::Relaxed);
    }

    /// Removes a dequeued job's estimated cost from the backlog gauge.
    pub(crate) fn note_dequeued(&self, cost_us: u64) {
        let _ = self
            .backlog_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(cost_us))
            });
    }

    /// The current estimated backlog in µs of execute time.
    pub(crate) fn backlog_us(&self) -> u64 {
        self.backlog_us.load(Ordering::Relaxed)
    }

    /// Whether the intake is overloaded (backlog above the threshold).
    pub(crate) fn overloaded(&self) -> bool {
        self.backlog_us() > self.cfg.overload_us
    }

    /// Whether the backlog has drained to the re-injection low-water
    /// mark (half the overload threshold) — hysteresis so deferred jobs
    /// don't thrash in and out. Inclusive, so a fully-drained backlog
    /// always re-injects even when the threshold rounds down to zero.
    pub(crate) fn below_low_water(&self) -> bool {
        self.backlog_us() <= self.cfg.overload_us / 2
    }

    /// Parks an expensive request in the deferral buffer; hands it back
    /// as `Some(req)` when the buffer is full (the caller sheds it).
    pub(crate) fn defer(&self, req: Request) -> Option<Request> {
        let mut deferred = self.deferred.lock().unwrap_or_else(PoisonError::into_inner);
        if deferred.len() >= self.cfg.defer_capacity {
            return Some(req);
        }
        deferred.push_back(req);
        None
    }

    /// Takes the oldest deferred request, if any.
    pub(crate) fn pop_deferred(&self) -> Option<Request> {
        self.deferred
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// Returns a request to the front of the deferral buffer (a
    /// re-injection attempt that found every lane full).
    pub(crate) fn push_front_deferred(&self, req: Request) {
        self.deferred
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_front(req);
    }

    /// Jobs currently parked in the deferral buffer.
    pub(crate) fn deferred_len(&self) -> usize {
        self.deferred
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_kinds_by_cost() {
        // At equal width the quantum and enumeration paths must dominate
        // promise jobs — that ordering is what admission control exists
        // to exploit.
        for width in [6, 8, 10, 12] {
            let promise = default_cost_us(JobKind::Promise, width);
            assert!(default_cost_us(JobKind::Quantum, width) > promise);
            assert!(default_cost_us(JobKind::Enumerate, width) > promise);
        }
        // Growth: enumerate doubles per line.
        assert_eq!(
            default_cost_us(JobKind::Enumerate, 10),
            16 * default_cost_us(JobKind::Enumerate, 6)
        );
    }

    #[test]
    fn ewma_calibration_converges_to_observations() {
        let adm = Admission::new(AdmissionConfig::default());
        let seeded = adm.estimate_us(JobKind::Promise, 6);
        assert_eq!(seeded, default_cost_us(JobKind::Promise, 6));
        for _ in 0..64 {
            adm.observe(JobKind::Promise, 6, 1_000);
        }
        let calibrated = adm.estimate_us(JobKind::Promise, 6);
        assert!(
            (900..=1_100).contains(&calibrated),
            "EWMA should converge near 1000, got {calibrated}"
        );
        // Other cells are untouched.
        assert_eq!(
            adm.estimate_us(JobKind::Promise, 7),
            default_cost_us(JobKind::Promise, 7)
        );
    }

    #[test]
    fn backlog_tracks_enqueue_dequeue_and_saturates() {
        let adm = Admission::new(AdmissionConfig::default().with_overload_us(100));
        assert!(!adm.overloaded());
        adm.note_enqueued(80);
        assert!(!adm.overloaded(), "80 <= 100");
        adm.note_enqueued(50);
        assert!(adm.overloaded(), "130 > 100");
        assert!(!adm.below_low_water());
        adm.note_dequeued(90);
        assert!(adm.below_low_water(), "40 < 50");
        adm.note_dequeued(1_000);
        assert_eq!(adm.backlog_us(), 0, "saturating, never wraps");
    }
}
