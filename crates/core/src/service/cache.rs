//! Worker-local memoization: dense-table and miter-solver caches.
//!
//! The `(width, equivalence)` shard routing in [`super::MatchService`]
//! means a lane keeps seeing the same circuits — the loadgen pool, a
//! regression replay, or a client re-checking one miter family. Each
//! worker therefore carries a [`ShardCaches`]:
//!
//! * a **dense-table LRU** keyed by the exact circuit, so a repeated
//!   circuit reuses its `2^width` lookup table instead of re-running the
//!   compile sweep (the PR-2 ROADMAP follow-up);
//! * a **CDCL solver LRU** keyed by the exact miter CNF, so repeated
//!   SAT verification of the same circuit pair re-enters a solver that
//!   already holds the learned refutation — the warm path answers from
//!   the clause database.
//!
//! Keys are compared by full equality (not hash), so a collision can
//! never hand back the wrong table or solver. Table reuse is purely a
//! speed layer — oracle answers are bit-identical with or without it.
//! Solver reuse never changes a *completed* verdict either (any verdict
//! returned is correct), but under a per-verification budget a warm
//! solver may **resolve** a formula the cold solver had to leave
//! `Unknown`: its retained learned clauses amount to a head start, so
//! budget-limited outcomes can improve (never degrade, never flip
//! between definitive answers) with cache warmth. Caches are
//! worker-local (no sharing, no locks): shard affinity is what makes
//! them hit.

use std::sync::Arc;
use std::time::Duration;

use revmatch_circuit::{Circuit, DenseTable, DENSE_MAX_WIDTH};
use revmatch_sat::{CdclSolver, Cnf, SatOptions};

use crate::engine::JobKind;
use crate::miter::MiterEncoding;
use crate::oracle::Oracle;

/// Resident cost of one cached dense table (`2^width` entries of 8 B).
fn table_cost(table: &Arc<DenseTable>) -> usize {
    (1usize << table.width()) * std::mem::size_of::<u64>()
}

/// Outcome of one dense-table cache probe ([`ShardCaches::oracle_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TableProbe {
    /// Whether the table was served from this worker's cache.
    pub hit: bool,
    /// Wall-clock of the cold compile sweep, when the probe missed and
    /// actually built a table (`None` on hits and on wide circuits that
    /// bypass the cache).
    pub compile: Option<Duration>,
}

impl TableProbe {
    /// A probe that never touched the cache (width past the dense cap).
    pub const BYPASS: TableProbe = TableProbe {
        hit: false,
        compile: None,
    };
}

/// A tiny move-to-front LRU with exact-equality keys and a per-entry
/// cost hook: eviction keeps the total cost within `budget` (a plain
/// count cap is `cost = |_| 1`).
#[derive(Debug)]
struct Lru<K, V> {
    budget: usize,
    cost: fn(&V) -> usize,
    total: usize,
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Lru<K, V> {
    fn new(budget: usize, cost: fn(&V) -> usize) -> Self {
        Self {
            budget: budget.max(1),
            cost,
            total: 0,
            entries: Vec::new(),
        }
    }

    /// Returns the cached value whose key satisfies `probe` (moved to
    /// front), or builds the `(key, value)` entry, inserts and returns
    /// it, evicting from the cold end until the total cost fits the
    /// budget (the newest entry always stays). The flag reports a hit.
    /// Taking a predicate instead of an owned key keeps the hit path
    /// allocation-free for expensive keys (circuits, formulas).
    fn get_or_insert_with(
        &mut self,
        probe: impl Fn(&K) -> bool,
        make: impl FnOnce() -> (K, V),
    ) -> (&mut V, bool) {
        if let Some(i) = self.entries.iter().position(|(k, _)| probe(k)) {
            self.entries[..=i].rotate_right(1);
            return (&mut self.entries[0].1, true);
        }
        let (key, value) = make();
        self.total += (self.cost)(&value);
        self.entries.insert(0, (key, value));
        while self.total > self.budget && self.entries.len() > 1 {
            let (_, evicted) = self.entries.pop().expect("len > 1");
            self.total -= (self.cost)(&evicted);
        }
        (&mut self.entries[0].1, false)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Per-worker memoization state — see the [module docs](self).
#[derive(Debug)]
pub(crate) struct ShardCaches {
    /// Dense tables, evicted by total size: a `2^w` table costs
    /// `8·2^w` bytes, so narrow mixes keep hundreds of tables while a
    /// single width-16 job (512 KiB) still fits comfortably. Keys
    /// include the [`JobKind`] so the per-kind hit metrics stay honest
    /// and one kind's churn cannot evict another kind's working set
    /// through shard-stolen work.
    tables: Lru<(JobKind, Circuit), Arc<DenseTable>>,
    solvers: Lru<(JobKind, Cnf), CdclSolver>,
    /// CDCL feature set stamped onto every solver this worker builds
    /// (the service's [`revmatch_sat::SatOptions`] selection).
    sat_opts: SatOptions,
}

/// Byte budget for the per-worker dense-table cache (~16 MiB: 32
/// width-16 tables, or thousands of narrow ones). A count-based cap
/// would thrash on cyclic pools of small circuits — the loadgen's exact
/// access pattern.
const TABLE_CACHE_BYTES: usize = 16 << 20;
/// Miter solvers kept per worker (each owns its clause database). Sized
/// above the loadgen pool's per-shard miter-family count: a cyclic
/// workload over more families than the capacity would never hit
/// (sequential scans are LRU's worst case).
const SOLVER_CACHE_CAP: usize = 32;

impl ShardCaches {
    pub fn new(sat_opts: SatOptions) -> Self {
        Self {
            tables: Lru::new(TABLE_CACHE_BYTES, table_cost),
            solvers: Lru::new(SOLVER_CACHE_CAP, |_| 1),
            sat_opts,
        }
    }

    /// A precompiled oracle for `circuit` on behalf of a `kind` job,
    /// reusing the cached dense table when this worker has compiled the
    /// same `(kind, circuit)` before. Falls back to the bit-sliced
    /// oracle beyond [`DENSE_MAX_WIDTH`], exactly like
    /// [`Oracle::precompiled`]. The probe reports a hit vs the measured
    /// cold-compile cost, so the caller can attribute the table sweep
    /// separately from the lookup around it.
    pub fn oracle_for(&mut self, kind: JobKind, circuit: Circuit) -> (Oracle, TableProbe) {
        if circuit.width() > DENSE_MAX_WIDTH {
            return (Oracle::new(circuit), TableProbe::BYPASS);
        }
        let mut compile = None;
        let (table, hit) = self.tables.get_or_insert_with(
            |(k, c)| *k == kind && *c == circuit,
            || {
                let (table, took) = DenseTable::compile_timed(&circuit)
                    .expect("width checked against DENSE_MAX_WIDTH");
                compile = Some(took);
                ((kind, circuit.clone()), Arc::new(table))
            },
        );
        let table = Arc::clone(table);
        (
            Oracle::with_shared_table(circuit, table),
            TableProbe { hit, compile },
        )
    }

    /// A CDCL solver owning `miter`'s formula, input-hinted, reused (with
    /// its learned clauses) when this worker has verified the same
    /// `(kind, miter)` before. The flag reports a solver-cache hit.
    pub fn solver_for(&mut self, kind: JobKind, miter: &MiterEncoding) -> (&mut CdclSolver, bool) {
        self.solver_for_cnf(kind, &miter.cnf, || miter.input_hint())
    }

    /// The generalized form of [`ShardCaches::solver_for`]: a cached CDCL
    /// solver for any `(kind, formula)` key — witness-family miters reuse
    /// it so one solver's learned clauses serve a whole family *across
    /// jobs*, not just across a single job's candidates (assumption-based
    /// solving leaves the cached solver clean; blocking clauses would
    /// not, which is why the service sweeps with assumptions).
    pub fn solver_for_cnf(
        &mut self,
        kind: JobKind,
        cnf: &Cnf,
        hint: impl FnOnce() -> Vec<usize>,
    ) -> (&mut CdclSolver, bool) {
        let opts = self.sat_opts;
        self.solvers.get_or_insert_with(
            |(k, cached)| *k == kind && *cached == *cnf,
            || {
                let solver = CdclSolver::new(cnf)
                    .with_options(opts)
                    .with_branch_hint(hint());
                ((kind, cnf.clone()), solver)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ClassicalOracle;
    use crate::witness::MatchWitness;
    use rand::SeedableRng;
    use revmatch_circuit::{random_circuit, RandomCircuitSpec};

    /// Probe/insert shorthand for the integer-keyed Lru tests.
    fn probe(lru: &mut Lru<u32, usize>, key: u32, value: usize) -> bool {
        lru.get_or_insert_with(|k| *k == key, || (key, value)).1
    }

    #[test]
    fn lru_hits_evicts_and_moves_to_front() {
        let mut lru: Lru<u32, usize> = Lru::new(2, |_| 1);
        assert!(!probe(&mut lru, 1, 10));
        assert!(!probe(&mut lru, 2, 20));
        // Hit 1 (moves to front), insert 3 → 2 is evicted.
        assert!(probe(&mut lru, 1, 99));
        assert!(!probe(&mut lru, 3, 30));
        assert_eq!(lru.len(), 2);
        assert!(!probe(&mut lru, 2, 21), "2 was evicted");
    }

    #[test]
    fn lru_cost_budget_evicts_by_total_and_keeps_newest() {
        // Cost = the value itself; budget 10.
        let mut lru: Lru<u32, usize> = Lru::new(10, |v| *v);
        assert!(!probe(&mut lru, 1, 4));
        assert!(!probe(&mut lru, 2, 4)); // total 8
        assert!(!probe(&mut lru, 3, 4)); // 12 → evict 1
        assert_eq!(lru.len(), 2);
        assert!(probe(&mut lru, 2, 99), "2 survived");
        assert!(!probe(&mut lru, 1, 4), "1 was evicted");
        // An over-budget single entry is still admitted (newest stays).
        assert!(!probe(&mut lru, 9, 50));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn cached_oracle_answers_match_fresh_compiles() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let c = random_circuit(&RandomCircuitSpec::for_width(6), &mut rng);
        let mut caches = ShardCaches::new(SatOptions::default());
        let (cold, probe_cold) = caches.oracle_for(JobKind::Promise, c.clone());
        assert!(!probe_cold.hit);
        assert!(
            probe_cold.compile.is_some(),
            "a cold miss measures its compile"
        );
        let (warm, probe_warm) = caches.oracle_for(JobKind::Promise, c.clone());
        assert!(probe_warm.hit);
        assert_eq!(probe_warm.compile, None, "a hit never compiles");
        // A different kind re-compiles: the key includes the kind.
        let (_, cross_kind) = caches.oracle_for(JobKind::Identify, c.clone());
        assert!(!cross_kind.hit);
        for x in 0..64u64 {
            assert_eq!(cold.query(x), c.apply(x));
            assert_eq!(warm.query(x), c.apply(x));
        }
    }

    #[test]
    fn distinct_circuits_never_share_a_table() {
        // Equal widths, different functions: the exact-equality key must
        // separate them.
        let a = Circuit::from_gates(3, [revmatch_circuit::Gate::not(0)]).unwrap();
        let b = Circuit::from_gates(3, [revmatch_circuit::Gate::not(1)]).unwrap();
        let mut caches = ShardCaches::new(SatOptions::default());
        let (oa, _) = caches.oracle_for(JobKind::Promise, a.clone());
        let (ob, probe) = caches.oracle_for(JobKind::Promise, b.clone());
        assert!(!probe.hit);
        assert_eq!(oa.query(0), 1);
        assert_eq!(ob.query(0), 2);
    }

    #[test]
    fn wide_circuits_bypass_the_table_cache() {
        let c = Circuit::new(DENSE_MAX_WIDTH + 1);
        let mut caches = ShardCaches::new(SatOptions::default());
        let (_, probe1) = caches.oracle_for(JobKind::Promise, c.clone());
        let (_, probe2) = caches.oracle_for(JobKind::Promise, c);
        assert_eq!(probe1, TableProbe::BYPASS);
        assert_eq!(probe2, TableProbe::BYPASS);
    }

    #[test]
    fn solver_cache_reuses_learned_state() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let c = random_circuit(&RandomCircuitSpec::for_width(5), &mut rng);
        let resynth = revmatch_circuit::synthesize(
            &c.truth_table().unwrap(),
            revmatch_circuit::SynthesisStrategy::Basic,
        )
        .unwrap();
        let miter = MiterEncoding::build(&c, &resynth, &MatchWitness::identity(c.width())).unwrap();
        let mut caches = ShardCaches::new(SatOptions::default());
        let (solver, hit) = caches.solver_for(JobKind::Promise, &miter);
        assert!(!hit);
        assert_eq!(solver.solve(), revmatch_sat::Solve::Unsat);
        let (solver, hit) = caches.solver_for(JobKind::Promise, &miter);
        assert!(hit);
        assert_eq!(solver.solve(), revmatch_sat::Solve::Unsat);
        assert_eq!(solver.conflicts(), 0, "warm verdict must be cached");
    }
}
