//! The bounded, sharded MPMC intake queue behind [`super::MatchService`].
//!
//! Each worker shard owns one FIFO lane; producers route to a preferred
//! lane (cache affinity) and spill to the others only when it is full, so
//! total intake capacity is `shards × capacity`. Consumers drain their own
//! lane first and steal from the fullest other lane when idle, which keeps
//! affinity under load without ever idling a worker while jobs wait.
//!
//! Blocking is split across two condvars: `work` parks consumers when every
//! lane is empty (or the queue is paused), `space` parks blocking producers
//! when every lane is full. Producers notify `work` after a push while
//! holding the `work` mutex — and symmetrically for `space` — so wakeups
//! cannot be lost between a re-check and a wait.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer/multi-consumer queue split into per-shard
/// FIFO lanes.
#[derive(Debug)]
pub(crate) struct ShardedQueue<T> {
    lanes: Vec<Mutex<VecDeque<T>>>,
    /// Capacity of each lane.
    capacity: usize,
    /// Consumers park here when every lane is empty or the queue is paused.
    work: Mutex<()>,
    work_cond: Condvar,
    /// Blocking producers park here when every lane is full.
    space: Mutex<()>,
    space_cond: Condvar,
    /// Cleared by `close`: consumers drain what is left, then exit.
    open: AtomicBool,
    /// While set, consumers park even if lanes hold work.
    paused: AtomicBool,
}

impl<T> ShardedQueue<T> {
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            lanes: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            capacity: capacity.max(1),
            work: Mutex::new(()),
            work_cond: Condvar::new(),
            space: Mutex::new(()),
            space_cond: Condvar::new(),
            open: AtomicBool::new(true),
            paused: AtomicBool::new(false),
        }
    }

    pub(crate) fn shards(&self) -> usize {
        self.lanes.len()
    }

    #[cfg(test)]
    pub(crate) fn depth(&self, lane: usize) -> usize {
        self.lanes[lane].lock().expect("lane lock").len()
    }

    pub(crate) fn total_depth(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.lock().expect("lane lock").len())
            .sum()
    }

    /// Pushes into `preferred`, spilling to the other lanes in order when
    /// it is full. Returns the lane used, or the item back when every lane
    /// is full (or the queue is closed).
    ///
    /// `on_accept(item, lane, depth_after)` runs **while the lane lock is
    /// still held**: the item is enqueued but not yet poppable, so the
    /// hook can stamp accept metadata and bump monotonic counters with no
    /// window in which a consumer observes the job first.
    pub(crate) fn try_push(
        &self,
        preferred: usize,
        item: T,
        on_accept: impl FnOnce(&mut T, usize, usize),
    ) -> Result<usize, T> {
        if !self.open.load(Ordering::Acquire) {
            return Err(item);
        }
        let n = self.lanes.len();
        for offset in 0..n {
            let lane = (preferred + offset) % n;
            let mut q = self.lanes[lane].lock().expect("lane lock");
            if q.len() < self.capacity {
                q.push_back(item);
                let depth = q.len();
                on_accept(q.back_mut().expect("just pushed"), lane, depth);
                drop(q);
                // Hold `work` while notifying so a consumer between its
                // empty-check and its wait cannot miss this push.
                let _g = self.work.lock().expect("work lock");
                self.work_cond.notify_one();
                return Ok(lane);
            }
        }
        Err(item)
    }

    /// Blocking push: waits for space, never rejects while the queue is
    /// open. Returns the item back only if the queue is closed. The
    /// `on_accept` hook behaves as in [`Self::try_push`].
    pub(crate) fn push_wait(
        &self,
        preferred: usize,
        mut item: T,
        mut on_accept: impl FnMut(&mut T, usize, usize),
    ) -> Result<usize, T> {
        loop {
            match self.try_push(preferred, item, &mut on_accept) {
                Ok(lane) => return Ok(lane),
                Err(back) => {
                    if !self.open.load(Ordering::Acquire) {
                        return Err(back);
                    }
                    item = back;
                    let guard = self.space.lock().expect("space lock");
                    // Re-check under the lock: a consumer frees space and
                    // notifies while holding this mutex.
                    if self.all_full() && self.open.load(Ordering::Acquire) {
                        let _unused = self.space_cond.wait(guard).expect("space wait");
                    }
                }
            }
        }
    }

    /// Blocking pop for consumer `shard`: drains its own lane first, then
    /// steals from the fullest other lane. Returns `None` only once the
    /// queue is closed **and** every lane is empty.
    ///
    /// `on_pop(lane, depth_after)` runs under the lane lock, so depth
    /// gauges updated from it are serialized per lane and never stick at
    /// a stale value.
    pub(crate) fn pop(
        &self,
        shard: usize,
        mut on_pop: impl FnMut(usize, usize),
    ) -> Option<(T, usize)> {
        loop {
            if !self.paused.load(Ordering::Acquire) {
                if let Some(got) = self.try_pop(shard, &mut on_pop) {
                    // Free space: wake one parked producer (under the
                    // `space` mutex, mirroring the push-side handshake).
                    let _g = self.space.lock().expect("space lock");
                    self.space_cond.notify_one();
                    drop(_g);
                    return Some(got);
                }
            }
            let guard = self.work.lock().expect("work lock");
            let idle = self.paused.load(Ordering::Acquire) || self.is_empty();
            if !self.open.load(Ordering::Acquire) && self.is_empty() {
                return None;
            }
            if idle {
                let _unused = self.work_cond.wait(guard).expect("work wait");
            }
        }
    }

    fn try_pop(&self, shard: usize, on_pop: &mut impl FnMut(usize, usize)) -> Option<(T, usize)> {
        // The pause flag is re-checked under each lane lock (and `pause`
        // cycles every lane lock after setting it), so a pop that starts
        // after `pause` returns can never take an item.
        {
            let mut q = self.lanes[shard].lock().expect("lane lock");
            if self.paused.load(Ordering::Acquire) {
                return None;
            }
            if let Some(item) = q.pop_front() {
                on_pop(shard, q.len());
                return Some((item, shard));
            }
        }
        // Steal from the fullest other lane to even out spilled bursts.
        let victim = (0..self.lanes.len())
            .filter(|&l| l != shard)
            .max_by_key(|&l| self.lanes[l].lock().expect("lane lock").len())?;
        let mut q = self.lanes[victim].lock().expect("lane lock");
        if self.paused.load(Ordering::Acquire) {
            return None;
        }
        let item = q.pop_front()?;
        on_pop(victim, q.len());
        Some((item, victim))
    }

    fn is_empty(&self) -> bool {
        self.lanes
            .iter()
            .all(|l| l.lock().expect("lane lock").is_empty())
    }

    fn all_full(&self) -> bool {
        self.lanes
            .iter()
            .all(|l| l.lock().expect("lane lock").len() >= self.capacity)
    }

    /// Stops consumers from popping (they park after finishing the item in
    /// hand). Pushes are unaffected, so a paused queue fills up — used by
    /// the backpressure tests and for rebalancing windows.
    ///
    /// By the time this returns, no consumer can take another item:
    /// consumers re-check the flag under the lane lock, and cycling every
    /// lane lock here means any pop that raced the store has finished and
    /// any later pop observes the flag.
    pub(crate) fn pause(&self) {
        self.paused.store(true, Ordering::Release);
        for lane in &self.lanes {
            drop(lane.lock().expect("lane lock"));
        }
    }

    /// Reverses [`Self::pause`] and wakes every parked consumer.
    pub(crate) fn resume(&self) {
        self.paused.store(false, Ordering::Release);
        let _g = self.work.lock().expect("work lock");
        self.work_cond.notify_all();
    }

    /// Closes the intake: subsequent pushes are rejected, consumers drain
    /// the remaining items and then observe `None`.
    pub(crate) fn close(&self) {
        self.open.store(false, Ordering::Release);
        self.resume();
        let _g = self.space.lock().expect("space lock");
        self.space_cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push<T>(q: &ShardedQueue<T>, preferred: usize, item: T) -> Result<usize, T> {
        q.try_push(preferred, item, |_, _, _| {})
    }

    fn pop<T>(q: &ShardedQueue<T>, shard: usize) -> Option<(T, usize)> {
        q.pop(shard, |_, _| {})
    }

    #[test]
    fn fifo_within_a_lane() {
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 8);
        for v in 0..5 {
            push(&q, 0, v).unwrap();
        }
        for v in 0..5 {
            assert_eq!(pop(&q, 0), Some((v, 0)));
        }
    }

    #[test]
    fn spills_to_other_lanes_then_rejects() {
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 2);
        for v in 0..4 {
            assert!(push(&q, 0, v).is_ok());
        }
        assert_eq!(q.depth(0), 2);
        assert_eq!(q.depth(1), 2);
        assert_eq!(push(&q, 0, 99), Err(99));
    }

    #[test]
    fn close_rejects_pushes_and_drains_pops() {
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 4);
        push(&q, 0, 7).unwrap();
        q.close();
        assert_eq!(push(&q, 0, 8), Err(8));
        assert_eq!(pop(&q, 0), Some((7, 0)));
        assert_eq!(pop(&q, 0), None);
    }

    #[test]
    fn stealing_takes_from_the_fullest_lane() {
        let q: ShardedQueue<u32> = ShardedQueue::new(3, 4);
        push(&q, 1, 10).unwrap();
        push(&q, 2, 20).unwrap();
        push(&q, 2, 21).unwrap();
        // Lane 0 is empty; the steal must come from lane 2 (depth 2).
        assert_eq!(pop(&q, 0), Some((20, 2)));
    }

    #[test]
    fn hooks_fire_under_the_lane_lock_with_exact_depths() {
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 4);
        let mut accepted = Vec::new();
        for v in [10, 11] {
            q.try_push(0, v, |item, lane, depth| {
                accepted.push((*item, lane, depth))
            })
            .unwrap();
        }
        assert_eq!(accepted, vec![(10, 0, 1), (11, 0, 2)]);
        let mut popped = Vec::new();
        while q.pop(0, |lane, depth| popped.push((lane, depth))).is_some() {
            if popped.len() == 2 {
                break;
            }
        }
        assert_eq!(popped, vec![(0, 1), (0, 0)]);
    }

    #[test]
    fn cross_thread_handoff() {
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 2);
        std::thread::scope(|s| {
            s.spawn(|| {
                for v in 0..64 {
                    q.push_wait(0, v, |_, _, _| {}).unwrap();
                }
                q.close();
            });
            let mut got = 0;
            while pop(&q, 1).is_some() {
                got += 1;
            }
            assert_eq!(got, 64);
        });
    }
}
