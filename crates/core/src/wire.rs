//! The `revmatch-server` wire protocol: length-prefixed binary frames.
//!
//! Every frame is `[u32 len (LE)][u8 opcode][body]`, where `len` counts
//! the opcode byte plus the body. Integers are little-endian; `usize`
//! quantities travel as `u64`. Frames larger than [`MAX_FRAME_LEN`] are
//! rejected before allocation, so a corrupt or hostile length prefix
//! cannot balloon server memory.
//!
//! Client → server ([`ClientFrame`]):
//!
//! | opcode | frame | body |
//! |--------|-------|------|
//! | `0x01` | `Submit` | `client_id: u64`, `seed: Option<u64>`, [`JobSpec`] |
//! | `0x02` | `MetricsRequest` | empty |
//!
//! Server → client ([`ServerFrame`]):
//!
//! | opcode | frame | body |
//! |--------|-------|------|
//! | `0x81` | `Report` | `client_id: u64`, [`JobReport`] |
//! | `0x82` | `MetricsText` | Prometheus exposition text |
//!
//! `client_id` is an opaque correlation token: the server echoes it on
//! the matching report, so a connection may pipeline submits and match
//! responses arriving in any order. `seed` carries an explicit per-job
//! seed ([`crate::MatchService::submit_seeded`]); absent, the server
//! derives seeds from its own accept indices. Because job outcomes
//! depend only on `(job, seed)`, a seeded submit over the wire is
//! bit-identical to the same in-process call — the protocol round-trips
//! every [`JobSpec`] and [`JobReport`] field losslessly, including
//! structural [`MatchError`] / [`CircuitError`] / [`QuantumError`]
//! payloads and the [`JobTiming`] breakdown.

use std::io::{self, Read, Write};

use revmatch_circuit::{Circuit, CircuitError, Gate, LinePermutation, NegationMask, NpTransform};
use revmatch_quantum::QuantumError;

use crate::engine::{
    EngineJob, EnumerateJob, IdentifyJob, JobKind, JobReport, JobSpec, QuantumAlgorithm,
    QuantumPathJob, SatEquivalenceJob,
};
use crate::enumerate::WitnessFamily;
use crate::equivalence::{Equivalence, Side};
use crate::error::MatchError;
use crate::miter::MiterVerdict;
use crate::observe::JobTiming;
use crate::witness::MatchWitness;

/// Hard cap on one frame's payload (opcode + body): 16 MiB, orders of
/// magnitude above any legal job (a width-64 circuit with hundreds of
/// thousands of gates), small enough that a bogus length prefix cannot
/// exhaust server memory.
pub const MAX_FRAME_LEN: usize = 16 << 20;

const OP_SUBMIT: u8 = 0x01;
const OP_METRICS_REQUEST: u8 = 0x02;
const OP_REPORT: u8 = 0x81;
const OP_METRICS_TEXT: u8 = 0x82;

/// A decode-side protocol failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (including mid-frame EOF).
    Io(io::Error),
    /// The peer sent a frame longer than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Advertised payload length.
        len: usize,
    },
    /// The frame decoded to something structurally invalid.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wire i/o error: {e}"),
            Self::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN} cap")
            }
            Self::Malformed(reason) => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

fn malformed(reason: impl Into<String>) -> WireError {
    WireError::Malformed(reason.into())
}

/// A frame sent by a client.
#[derive(Debug, Clone)]
pub enum ClientFrame {
    /// Submit one job; the matching [`ServerFrame::Report`] echoes
    /// `client_id`.
    Submit {
        /// Opaque correlation token chosen by the client.
        client_id: u64,
        /// Explicit per-job seed; `None` lets the server derive one.
        seed: Option<u64>,
        /// The job itself.
        job: JobSpec,
    },
    /// Request one [`ServerFrame::MetricsText`] snapshot.
    MetricsRequest,
}

/// A frame sent by the server.
#[derive(Debug, Clone)]
pub enum ServerFrame {
    /// The completed report for the submit carrying the same
    /// `client_id`.
    Report {
        /// The client's correlation token, echoed.
        client_id: u64,
        /// The job's report, timing included.
        report: JobReport,
    },
    /// One Prometheus-text metrics snapshot.
    MetricsText(String),
}

// ---------------------------------------------------------------------
// Encoder: append-to-Vec primitives.
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_side(out: &mut Vec<u8>, side: Side) {
    put_u8(
        out,
        match side {
            Side::I => 0,
            Side::N => 1,
            Side::P => 2,
            Side::Np => 3,
        },
    );
}

fn put_equivalence(out: &mut Vec<u8>, e: Equivalence) {
    put_side(out, e.x);
    put_side(out, e.y);
}

fn put_circuit(out: &mut Vec<u8>, c: &Circuit) {
    put_u8(out, c.width() as u8);
    put_u32(out, c.gates().len() as u32);
    for gate in c.gates() {
        put_u64(out, gate.control_mask());
        put_u64(out, gate.positive_mask());
        put_u8(out, gate.target() as u8);
    }
}

fn put_transform(out: &mut Vec<u8>, t: &NpTransform) {
    put_u8(out, t.width() as u8);
    put_u64(out, t.negation().mask());
    for &line in t.permutation().as_slice() {
        put_u8(out, line as u8);
    }
}

fn put_witness(out: &mut Vec<u8>, w: &MatchWitness) {
    put_transform(out, &w.input);
    put_transform(out, &w.output);
}

fn put_circuit_error(out: &mut Vec<u8>, e: &CircuitError) {
    match e {
        CircuitError::LineOutOfRange { line, width } => {
            put_u8(out, 0);
            put_u64(out, *line as u64);
            put_u64(out, *width as u64);
        }
        CircuitError::WidthMismatch { left, right } => {
            put_u8(out, 1);
            put_u64(out, *left as u64);
            put_u64(out, *right as u64);
        }
        CircuitError::TargetIsControl { line } => {
            put_u8(out, 2);
            put_u64(out, *line as u64);
        }
        CircuitError::DuplicateControl { line } => {
            put_u8(out, 3);
            put_u64(out, *line as u64);
        }
        CircuitError::NotBijective => put_u8(out, 4),
        CircuitError::NotAPermutation => put_u8(out, 5),
        CircuitError::ParsePattern { input, reason } => {
            put_u8(out, 6);
            put_string(out, input);
            put_string(out, reason);
        }
        CircuitError::ParseReal { line_no, reason } => {
            put_u8(out, 7);
            put_u64(out, *line_no as u64);
            put_string(out, reason);
        }
        CircuitError::WidthTooLarge { width, max } => {
            put_u8(out, 8);
            put_u64(out, *width as u64);
            put_u64(out, *max as u64);
        }
        // `CircuitError` is non_exhaustive; an unknown future variant
        // degrades to its rendered message rather than failing to send.
        other => {
            put_u8(out, 6);
            put_string(out, "");
            put_string(out, &other.to_string());
        }
    }
}

fn put_quantum_error(out: &mut Vec<u8>, e: &QuantumError) {
    match e {
        QuantumError::QubitOutOfRange { qubit, n } => {
            put_u8(out, 0);
            put_u64(out, *qubit as u64);
            put_u64(out, *n as u64);
        }
        QuantumError::QubitCountMismatch { left, right } => {
            put_u8(out, 1);
            put_u64(out, *left as u64);
            put_u64(out, *right as u64);
        }
        QuantumError::TooManyQubits { n, max } => {
            put_u8(out, 2);
            put_u64(out, *n as u64);
            put_u64(out, *max as u64);
        }
        QuantumError::InvalidAmplitudes { reason } => {
            put_u8(out, 3);
            put_string(out, reason);
        }
        QuantumError::StateTooLarge { entries, max } => {
            put_u8(out, 4);
            put_u64(out, *entries as u64);
            put_u64(out, *max as u64);
        }
        // `QuantumError` is non_exhaustive; degrade unknown variants to
        // their rendered message.
        other => {
            put_u8(out, 3);
            put_string(out, &other.to_string());
        }
    }
}

fn put_match_error(out: &mut Vec<u8>, e: &MatchError) {
    match e {
        MatchError::WidthMismatch { left, right } => {
            put_u8(out, 0);
            put_u64(out, *left as u64);
            put_u64(out, *right as u64);
        }
        MatchError::InverseRequired => put_u8(out, 1),
        MatchError::RandomizedFailure { reason } => {
            put_u8(out, 2);
            put_string(out, reason);
        }
        MatchError::Intractable { equivalence } => {
            put_u8(out, 3);
            put_string(out, equivalence);
        }
        MatchError::PromiseViolated => put_u8(out, 4),
        MatchError::BruteForceTooWide { width, max } => {
            put_u8(out, 5);
            put_u64(out, *width as u64);
            put_u64(out, *max as u64);
        }
        MatchError::OpenProblem { case } => {
            put_u8(out, 6);
            put_string(out, case);
        }
        MatchError::Inconclusive => put_u8(out, 7),
        MatchError::EnumerationTooWide { width, max } => {
            put_u8(out, 8);
            put_u64(out, *width as u64);
            put_u64(out, *max as u64);
        }
        MatchError::FamilyMismatch => put_u8(out, 9),
        MatchError::NoEquivalence => put_u8(out, 10),
        MatchError::Parse { reason } => {
            put_u8(out, 11);
            put_string(out, reason);
        }
        MatchError::WorkerLost => put_u8(out, 12),
        MatchError::Overloaded => put_u8(out, 13),
        MatchError::Circuit(ce) => {
            put_u8(out, 14);
            put_circuit_error(out, ce);
        }
        MatchError::Quantum(qe) => {
            put_u8(out, 15);
            put_quantum_error(out, qe);
        }
    }
}

fn put_kind(out: &mut Vec<u8>, kind: JobKind) {
    put_u8(
        out,
        match kind {
            JobKind::Promise => 0,
            JobKind::Identify => 1,
            JobKind::Quantum => 2,
            JobKind::Sat => 3,
            JobKind::Enumerate => 4,
        },
    );
}

fn put_family(out: &mut Vec<u8>, family: WitnessFamily) {
    put_u8(
        out,
        match family {
            WitnessFamily::InputNegation => 0,
            WitnessFamily::OutputNegation => 1,
            WitnessFamily::BothNegations => 2,
            WitnessFamily::InputPermutation => 3,
            WitnessFamily::OutputPermutation => 4,
        },
    );
}

fn put_job(out: &mut Vec<u8>, job: &JobSpec) {
    match job {
        JobSpec::Promise(j) => {
            put_u8(out, 0);
            put_equivalence(out, j.equivalence);
            put_circuit(out, &j.c1);
            put_circuit(out, &j.c2);
            put_bool(out, j.with_inverses);
            put_bool(out, j.sat_verify);
        }
        JobSpec::Identify(j) => {
            put_u8(out, 1);
            put_circuit(out, &j.c1);
            put_circuit(out, &j.c2);
            put_bool(out, j.allow_brute_force);
        }
        JobSpec::QuantumPath(j) => {
            put_u8(out, 2);
            put_equivalence(out, j.equivalence);
            put_circuit(out, &j.c1);
            put_circuit(out, &j.c2);
            put_u8(
                out,
                match j.algorithm {
                    QuantumAlgorithm::SwapTest => 0,
                    QuantumAlgorithm::Simon => 1,
                },
            );
        }
        JobSpec::SatEquivalence(j) => {
            put_u8(out, 3);
            put_circuit(out, &j.c1);
            put_circuit(out, &j.c2);
            match &j.witness {
                Some(w) => {
                    put_bool(out, true);
                    put_witness(out, w);
                }
                None => put_bool(out, false),
            }
        }
        JobSpec::Enumerate(j) => {
            put_u8(out, 4);
            put_circuit(out, &j.c1);
            put_circuit(out, &j.c2);
            put_family(out, j.family);
        }
    }
}

fn put_verdict(out: &mut Vec<u8>, verdict: &MiterVerdict) {
    match verdict {
        MiterVerdict::Equivalent => put_u8(out, 0),
        MiterVerdict::Counterexample { input } => {
            put_u8(out, 1);
            put_u64(out, *input);
        }
        MiterVerdict::Unknown {
            decisions,
            conflicts,
        } => {
            put_u8(out, 2);
            put_u64(out, *decisions as u64);
            put_u64(out, *conflicts as u64);
        }
    }
}

fn put_report(out: &mut Vec<u8>, report: &JobReport) {
    put_kind(out, report.kind);
    match &report.witness {
        Ok(w) => {
            put_bool(out, true);
            put_witness(out, w);
        }
        Err(e) => {
            put_bool(out, false);
            put_match_error(out, e);
        }
    }
    put_u64(out, report.queries);
    put_u64(out, report.charged_queries);
    put_u64(out, report.rounds);
    match report.identified {
        Some(e) => {
            put_bool(out, true);
            put_equivalence(out, e);
        }
        None => put_bool(out, false),
    }
    match report.witness_count {
        Some(c) => {
            put_bool(out, true);
            put_u64(out, c);
        }
        None => put_bool(out, false),
    }
    match &report.miter {
        Some(v) => {
            put_bool(out, true);
            put_verdict(out, v);
        }
        None => put_bool(out, false),
    }
    put_u64(out, report.timing.queue_wait_us);
    put_u64(out, report.timing.exec_us);
    put_bool(out, report.timing.cache_hit);
}

// ---------------------------------------------------------------------
// Decoder: a cursor over one frame's payload.
// ---------------------------------------------------------------------

struct Buf<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Buf<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| malformed("truncated frame"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(malformed(format!("bad bool byte {b:#x}"))),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after frame body",
                self.data.len() - self.pos
            )))
        }
    }
}

fn get_side(buf: &mut Buf<'_>) -> Result<Side, WireError> {
    match buf.u8()? {
        0 => Ok(Side::I),
        1 => Ok(Side::N),
        2 => Ok(Side::P),
        3 => Ok(Side::Np),
        b => Err(malformed(format!("bad side tag {b:#x}"))),
    }
}

fn get_equivalence(buf: &mut Buf<'_>) -> Result<Equivalence, WireError> {
    Ok(Equivalence::new(get_side(buf)?, get_side(buf)?))
}

fn get_circuit(buf: &mut Buf<'_>) -> Result<Circuit, WireError> {
    let width = buf.u8()? as usize;
    let count = buf.u32()? as usize;
    let mut gates = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let control_mask = buf.u64()?;
        let positive_mask = buf.u64()?;
        let target = buf.u8()? as usize;
        gates.push(
            Gate::from_masks(control_mask, positive_mask, target)
                .map_err(|e| malformed(format!("bad gate: {e}")))?,
        );
    }
    Circuit::from_gates(width, gates).map_err(|e| malformed(format!("bad circuit: {e}")))
}

fn get_transform(buf: &mut Buf<'_>) -> Result<NpTransform, WireError> {
    let width = buf.u8()? as usize;
    let mask = buf.u64()?;
    let nu = NegationMask::new(mask, width).map_err(|e| malformed(format!("bad negation: {e}")))?;
    let mut map = Vec::with_capacity(width);
    for _ in 0..width {
        map.push(buf.u8()? as usize);
    }
    let pi = LinePermutation::new(map).map_err(|e| malformed(format!("bad permutation: {e}")))?;
    NpTransform::new(nu, pi).map_err(|e| malformed(format!("bad transform: {e}")))
}

fn get_witness(buf: &mut Buf<'_>) -> Result<MatchWitness, WireError> {
    let input = get_transform(buf)?;
    let output = get_transform(buf)?;
    MatchWitness::new(input, output).map_err(|e| malformed(format!("bad witness: {e}")))
}

fn get_circuit_error(buf: &mut Buf<'_>) -> Result<CircuitError, WireError> {
    Ok(match buf.u8()? {
        0 => CircuitError::LineOutOfRange {
            line: buf.u64()? as usize,
            width: buf.u64()? as usize,
        },
        1 => CircuitError::WidthMismatch {
            left: buf.u64()? as usize,
            right: buf.u64()? as usize,
        },
        2 => CircuitError::TargetIsControl {
            line: buf.u64()? as usize,
        },
        3 => CircuitError::DuplicateControl {
            line: buf.u64()? as usize,
        },
        4 => CircuitError::NotBijective,
        5 => CircuitError::NotAPermutation,
        6 => CircuitError::ParsePattern {
            input: buf.string()?,
            reason: buf.string()?,
        },
        7 => CircuitError::ParseReal {
            line_no: buf.u64()? as usize,
            reason: buf.string()?,
        },
        8 => CircuitError::WidthTooLarge {
            width: buf.u64()? as usize,
            max: buf.u64()? as usize,
        },
        b => return Err(malformed(format!("bad circuit-error tag {b:#x}"))),
    })
}

fn get_quantum_error(buf: &mut Buf<'_>) -> Result<QuantumError, WireError> {
    Ok(match buf.u8()? {
        0 => QuantumError::QubitOutOfRange {
            qubit: buf.u64()? as usize,
            n: buf.u64()? as usize,
        },
        1 => QuantumError::QubitCountMismatch {
            left: buf.u64()? as usize,
            right: buf.u64()? as usize,
        },
        2 => QuantumError::TooManyQubits {
            n: buf.u64()? as usize,
            max: buf.u64()? as usize,
        },
        3 => QuantumError::InvalidAmplitudes {
            reason: buf.string()?,
        },
        4 => QuantumError::StateTooLarge {
            entries: buf.u64()? as usize,
            max: buf.u64()? as usize,
        },
        b => return Err(malformed(format!("bad quantum-error tag {b:#x}"))),
    })
}

fn get_match_error(buf: &mut Buf<'_>) -> Result<MatchError, WireError> {
    Ok(match buf.u8()? {
        0 => MatchError::WidthMismatch {
            left: buf.u64()? as usize,
            right: buf.u64()? as usize,
        },
        1 => MatchError::InverseRequired,
        2 => MatchError::RandomizedFailure {
            reason: buf.string()?,
        },
        3 => MatchError::Intractable {
            equivalence: buf.string()?,
        },
        4 => MatchError::PromiseViolated,
        5 => MatchError::BruteForceTooWide {
            width: buf.u64()? as usize,
            max: buf.u64()? as usize,
        },
        6 => MatchError::OpenProblem {
            case: buf.string()?,
        },
        7 => MatchError::Inconclusive,
        8 => MatchError::EnumerationTooWide {
            width: buf.u64()? as usize,
            max: buf.u64()? as usize,
        },
        9 => MatchError::FamilyMismatch,
        10 => MatchError::NoEquivalence,
        11 => MatchError::Parse {
            reason: buf.string()?,
        },
        12 => MatchError::WorkerLost,
        13 => MatchError::Overloaded,
        14 => MatchError::Circuit(get_circuit_error(buf)?),
        15 => MatchError::Quantum(get_quantum_error(buf)?),
        b => return Err(malformed(format!("bad match-error tag {b:#x}"))),
    })
}

fn get_kind(buf: &mut Buf<'_>) -> Result<JobKind, WireError> {
    match buf.u8()? {
        0 => Ok(JobKind::Promise),
        1 => Ok(JobKind::Identify),
        2 => Ok(JobKind::Quantum),
        3 => Ok(JobKind::Sat),
        4 => Ok(JobKind::Enumerate),
        b => Err(malformed(format!("bad job-kind tag {b:#x}"))),
    }
}

fn get_family(buf: &mut Buf<'_>) -> Result<WitnessFamily, WireError> {
    match buf.u8()? {
        0 => Ok(WitnessFamily::InputNegation),
        1 => Ok(WitnessFamily::OutputNegation),
        2 => Ok(WitnessFamily::BothNegations),
        3 => Ok(WitnessFamily::InputPermutation),
        4 => Ok(WitnessFamily::OutputPermutation),
        b => Err(malformed(format!("bad family tag {b:#x}"))),
    }
}

fn get_job(buf: &mut Buf<'_>) -> Result<JobSpec, WireError> {
    Ok(match buf.u8()? {
        0 => JobSpec::Promise(EngineJob {
            equivalence: get_equivalence(buf)?,
            c1: get_circuit(buf)?,
            c2: get_circuit(buf)?,
            with_inverses: buf.bool()?,
            sat_verify: buf.bool()?,
        }),
        1 => JobSpec::Identify(IdentifyJob {
            c1: get_circuit(buf)?,
            c2: get_circuit(buf)?,
            allow_brute_force: buf.bool()?,
        }),
        2 => JobSpec::QuantumPath(QuantumPathJob {
            equivalence: get_equivalence(buf)?,
            c1: get_circuit(buf)?,
            c2: get_circuit(buf)?,
            algorithm: match buf.u8()? {
                0 => QuantumAlgorithm::SwapTest,
                1 => QuantumAlgorithm::Simon,
                b => return Err(malformed(format!("bad algorithm tag {b:#x}"))),
            },
        }),
        3 => JobSpec::SatEquivalence(SatEquivalenceJob {
            c1: get_circuit(buf)?,
            c2: get_circuit(buf)?,
            witness: if buf.bool()? {
                Some(get_witness(buf)?)
            } else {
                None
            },
        }),
        4 => JobSpec::Enumerate(EnumerateJob {
            c1: get_circuit(buf)?,
            c2: get_circuit(buf)?,
            family: get_family(buf)?,
        }),
        b => return Err(malformed(format!("bad job tag {b:#x}"))),
    })
}

fn get_verdict(buf: &mut Buf<'_>) -> Result<MiterVerdict, WireError> {
    Ok(match buf.u8()? {
        0 => MiterVerdict::Equivalent,
        1 => MiterVerdict::Counterexample { input: buf.u64()? },
        2 => MiterVerdict::Unknown {
            decisions: buf.u64()? as usize,
            conflicts: buf.u64()? as usize,
        },
        b => return Err(malformed(format!("bad verdict tag {b:#x}"))),
    })
}

fn get_report(buf: &mut Buf<'_>) -> Result<JobReport, WireError> {
    let kind = get_kind(buf)?;
    let witness = if buf.bool()? {
        Ok(get_witness(buf)?)
    } else {
        Err(get_match_error(buf)?)
    };
    let queries = buf.u64()?;
    let charged_queries = buf.u64()?;
    let rounds = buf.u64()?;
    let identified = if buf.bool()? {
        Some(get_equivalence(buf)?)
    } else {
        None
    };
    let witness_count = if buf.bool()? { Some(buf.u64()?) } else { None };
    let miter = if buf.bool()? {
        Some(get_verdict(buf)?)
    } else {
        None
    };
    let timing = JobTiming {
        queue_wait_us: buf.u64()?,
        exec_us: buf.u64()?,
        cache_hit: buf.bool()?,
    };
    Ok(JobReport {
        kind,
        witness,
        queries,
        charged_queries,
        rounds,
        identified,
        witness_count,
        miter,
        timing,
    })
}

// ---------------------------------------------------------------------
// Framed transport.
// ---------------------------------------------------------------------

fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed payload. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer closed between frames); EOF mid-frame is an
/// error.
fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_bytes = [0u8; 4];
    // Hand-rolled read_exact that distinguishes "no frame at all" from
    // "frame cut short".
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(malformed("EOF inside frame length prefix")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(malformed("zero-length frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serializes one client frame onto `w` (unbuffered: wrap `w` in a
/// `BufWriter` and flush per frame for interactive use).
pub fn write_client_frame<W: Write>(w: &mut W, frame: &ClientFrame) -> io::Result<()> {
    let mut payload = Vec::new();
    match frame {
        ClientFrame::Submit {
            client_id,
            seed,
            job,
        } => {
            put_u8(&mut payload, OP_SUBMIT);
            put_u64(&mut payload, *client_id);
            match seed {
                Some(s) => {
                    put_bool(&mut payload, true);
                    put_u64(&mut payload, *s);
                }
                None => put_bool(&mut payload, false),
            }
            put_job(&mut payload, job);
        }
        ClientFrame::MetricsRequest => put_u8(&mut payload, OP_METRICS_REQUEST),
    }
    write_frame(w, &payload)
}

/// Reads one client frame from `r`; `Ok(None)` is a clean close.
pub fn read_client_frame<R: Read>(r: &mut R) -> Result<Option<ClientFrame>, WireError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let mut buf = Buf::new(&payload);
    let frame = match buf.u8()? {
        OP_SUBMIT => {
            let client_id = buf.u64()?;
            let seed = if buf.bool()? { Some(buf.u64()?) } else { None };
            let job = get_job(&mut buf)?;
            ClientFrame::Submit {
                client_id,
                seed,
                job,
            }
        }
        OP_METRICS_REQUEST => ClientFrame::MetricsRequest,
        op => return Err(malformed(format!("unknown client opcode {op:#x}"))),
    };
    buf.finish()?;
    Ok(Some(frame))
}

/// Serializes one server frame onto `w`.
pub fn write_server_frame<W: Write>(w: &mut W, frame: &ServerFrame) -> io::Result<()> {
    let mut payload = Vec::new();
    match frame {
        ServerFrame::Report { client_id, report } => {
            put_u8(&mut payload, OP_REPORT);
            put_u64(&mut payload, *client_id);
            put_report(&mut payload, report);
        }
        ServerFrame::MetricsText(text) => {
            put_u8(&mut payload, OP_METRICS_TEXT);
            put_string(&mut payload, text);
        }
    }
    write_frame(w, &payload)
}

/// Reads one server frame from `r`; `Ok(None)` is a clean close.
pub fn read_server_frame<R: Read>(r: &mut R) -> Result<Option<ServerFrame>, WireError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let mut buf = Buf::new(&payload);
    let frame = match buf.u8()? {
        OP_REPORT => ServerFrame::Report {
            client_id: buf.u64()?,
            report: get_report(&mut buf)?,
        },
        OP_METRICS_TEXT => ServerFrame::MetricsText(buf.string()?),
        op => return Err(malformed(format!("unknown server opcode {op:#x}"))),
    };
    buf.finish()?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_circuits(width: usize) -> (Circuit, Circuit) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let inst =
            crate::promise::random_instance(Equivalence::new(Side::N, Side::I), width, &mut rng);
        (inst.c1, inst.c2)
    }

    fn sample_jobs() -> Vec<JobSpec> {
        let (c1, c2) = sample_circuits(5);
        let witness = MatchWitness::identity(5);
        vec![
            JobSpec::Promise(EngineJob {
                equivalence: Equivalence::new(Side::N, Side::I),
                c1: c1.clone(),
                c2: c2.clone(),
                with_inverses: true,
                sat_verify: true,
            }),
            JobSpec::Identify(IdentifyJob {
                c1: c1.clone(),
                c2: c2.clone(),
                allow_brute_force: false,
            }),
            JobSpec::QuantumPath(QuantumPathJob {
                equivalence: Equivalence::new(Side::N, Side::I),
                c1: c1.clone(),
                c2: c2.clone(),
                algorithm: QuantumAlgorithm::Simon,
            }),
            JobSpec::SatEquivalence(SatEquivalenceJob {
                c1: c1.clone(),
                c2: c2.clone(),
                witness: Some(witness),
            }),
            JobSpec::Enumerate(EnumerateJob {
                c1,
                c2,
                family: WitnessFamily::InputNegation,
            }),
        ]
    }

    fn round_trip_client(frame: &ClientFrame) -> ClientFrame {
        let mut bytes = Vec::new();
        write_client_frame(&mut bytes, frame).unwrap();
        let mut cursor = bytes.as_slice();
        let decoded = read_client_frame(&mut cursor).unwrap().unwrap();
        assert!(cursor.is_empty(), "frame fully consumed");
        decoded
    }

    fn round_trip_report(report: &JobReport) -> JobReport {
        let mut bytes = Vec::new();
        write_server_frame(
            &mut bytes,
            &ServerFrame::Report {
                client_id: 42,
                report: report.clone(),
            },
        )
        .unwrap();
        let mut cursor = bytes.as_slice();
        match read_server_frame(&mut cursor).unwrap().unwrap() {
            ServerFrame::Report { client_id, report } => {
                assert_eq!(client_id, 42);
                report
            }
            other => panic!("expected a report frame, got {other:?}"),
        }
    }

    #[test]
    fn every_job_kind_round_trips() {
        for job in sample_jobs() {
            let frame = ClientFrame::Submit {
                client_id: 0xDEAD_BEEF,
                seed: Some(17),
                job: job.clone(),
            };
            let ClientFrame::Submit {
                client_id,
                seed,
                job: decoded,
            } = round_trip_client(&frame)
            else {
                panic!("expected a submit frame");
            };
            assert_eq!(client_id, 0xDEAD_BEEF);
            assert_eq!(seed, Some(17));
            assert_eq!(format!("{decoded:?}"), format!("{job:?}"));
        }
    }

    #[test]
    fn reports_round_trip_bit_identically() {
        let base = JobReport {
            kind: JobKind::Promise,
            witness: Ok(MatchWitness::identity(6)),
            queries: 12,
            charged_queries: 10,
            rounds: 3,
            identified: Some(Equivalence::new(Side::N, Side::Np)),
            witness_count: Some(4),
            miter: Some(MiterVerdict::Unknown {
                decisions: 100,
                conflicts: 7,
            }),
            timing: JobTiming {
                queue_wait_us: 55,
                exec_us: 1234,
                cache_hit: true,
            },
        };
        let decoded = round_trip_report(&base);
        assert_eq!(format!("{decoded:?}"), format!("{base:?}"));
        // Every structural error variant survives the wire.
        let errors = vec![
            MatchError::WidthMismatch { left: 3, right: 4 },
            MatchError::InverseRequired,
            MatchError::RandomizedFailure {
                reason: "collision".into(),
            },
            MatchError::Intractable {
                equivalence: "P-P".into(),
            },
            MatchError::PromiseViolated,
            MatchError::BruteForceTooWide { width: 20, max: 6 },
            MatchError::OpenProblem { case: "P-I".into() },
            MatchError::Inconclusive,
            MatchError::EnumerationTooWide { width: 30, max: 12 },
            MatchError::FamilyMismatch,
            MatchError::NoEquivalence,
            MatchError::Parse {
                reason: "bad kind".into(),
            },
            MatchError::WorkerLost,
            MatchError::Overloaded,
            MatchError::Circuit(CircuitError::NotBijective),
            MatchError::Circuit(CircuitError::ParsePattern {
                input: "x1".into(),
                reason: "nope".into(),
            }),
            MatchError::Quantum(QuantumError::TooManyQubits { n: 80, max: 63 }),
        ];
        for err in errors {
            let report = JobReport {
                witness: Err(err.clone()),
                miter: None,
                identified: None,
                witness_count: None,
                ..base.clone()
            };
            let decoded = round_trip_report(&report);
            assert_eq!(decoded.witness, Err(err));
        }
    }

    #[test]
    fn metrics_frames_round_trip() {
        let mut bytes = Vec::new();
        write_client_frame(&mut bytes, &ClientFrame::MetricsRequest).unwrap();
        let mut cursor = bytes.as_slice();
        assert!(matches!(
            read_client_frame(&mut cursor).unwrap().unwrap(),
            ClientFrame::MetricsRequest
        ));
        let text = "revmatch_jobs_submitted_total 5\n".to_string();
        let mut bytes = Vec::new();
        write_server_frame(&mut bytes, &ServerFrame::MetricsText(text.clone())).unwrap();
        let mut cursor = bytes.as_slice();
        match read_server_frame(&mut cursor).unwrap().unwrap() {
            ServerFrame::MetricsText(got) => assert_eq!(got, text),
            other => panic!("expected metrics text, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_an_error() {
        let mut empty: &[u8] = &[];
        assert!(read_client_frame(&mut empty).unwrap().is_none());
        // Truncated length prefix.
        let mut partial: &[u8] = &[1, 0];
        assert!(matches!(
            read_client_frame(&mut partial),
            Err(WireError::Malformed(_))
        ));
        // Oversized length prefix is rejected before allocation.
        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut cursor: &[u8] = &huge;
        assert!(matches!(
            read_client_frame(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
        // Unknown opcode.
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &[0x7F]).unwrap();
        let mut cursor = bytes.as_slice();
        assert!(matches!(
            read_client_frame(&mut cursor),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage after a valid body.
        let mut payload = vec![OP_METRICS_REQUEST, 0xFF];
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &payload).unwrap();
        payload.clear();
        let mut cursor = bytes.as_slice();
        assert!(matches!(
            read_client_frame(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }
}
