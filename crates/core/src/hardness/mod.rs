//! Hardness reductions (paper §5): UNIQUE-SAT ≤p N-N and ≤p P-P.
//!
//! * [`encode`] builds the Fig. 5 circuits: clause encoders `U(c)`, the
//!   `8m + 4`-gate UNIQUE-SAT encoding circuit `C1`, and the single-gate
//!   comparison circuit `C2`.
//! * [`nn`] is the Theorem 2 driver: CNF → N-N instance, assignment ↔
//!   negation-witness transport, and a SAT-backed solver.
//! * [`pp`] is the Theorem 3 driver: dual-rail CNF → P-P instance with
//!   permutation witnesses.

pub mod encode;
pub mod nn;
pub mod pp;

pub use encode::{clause_encoder, encode_unique_sat, u_phi, SatLayout};
pub use nn::NnReduction;
pub use pp::{dual_rail, PpReduction};
