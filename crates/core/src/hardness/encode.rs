//! The Fig. 5 encoding circuits.
//!
//! Line layout (0-based, generalizing Fig. 5 to cover both reductions):
//!
//! ```text
//! [ x_0 … x_{n−1} | y_0 … y_{ny−1} | a_0 … a_{m−1} | b | z ]
//! ```
//!
//! `x` lines carry the CNF variables, optional `y` lines the dual-rail
//! copies (P-P reduction only), one `a` (ancilla) line per clause, plus the
//! `b` helper and the `z` result line. The UNIQUE-SAT encoding circuit
//! computes, on the `z` line, `z ⊕ f` with
//! `f = φ(x, y) ∧ (ā_0 … ā_{m−1})` (Eq. 3) while restoring every other
//! line — using exactly `8m + 4` MCT gates.

use revmatch_circuit::{Circuit, Control, Gate};
use revmatch_sat::{Clause, Cnf};

use crate::error::MatchError;

/// Line layout of the Fig. 5 circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatLayout {
    /// Number of primary variables (`x` lines).
    pub num_vars: usize,
    /// Number of dual-rail variables (`y` lines; 0 for the N-N reduction).
    pub num_dual: usize,
    /// Number of clauses (`a` lines).
    pub num_clauses: usize,
}

impl SatLayout {
    /// Layout for a plain formula (N-N reduction: no dual rail).
    pub fn for_cnf(cnf: &Cnf) -> Self {
        Self {
            num_vars: cnf.num_vars(),
            num_dual: 0,
            num_clauses: cnf.num_clauses(),
        }
    }

    /// Layout for a dual-railed formula over `n` primaries (P-P reduction):
    /// `n` extra `y` lines and the original clause count (which already
    /// includes the `2n` rail clauses).
    pub fn for_dual_rail(primary_vars: usize, cnf: &Cnf) -> Self {
        Self {
            num_vars: primary_vars,
            num_dual: primary_vars,
            num_clauses: cnf.num_clauses(),
        }
    }

    /// Line of primary variable `i`.
    pub fn x_line(&self, i: usize) -> usize {
        assert!(i < self.num_vars);
        i
    }

    /// Line of dual-rail variable `j`.
    pub fn y_line(&self, j: usize) -> usize {
        assert!(j < self.num_dual);
        self.num_vars + j
    }

    /// Line of CNF variable index `v` (primaries first, then duals).
    pub fn var_line(&self, v: usize) -> usize {
        assert!(v < self.num_vars + self.num_dual);
        v
    }

    /// Line of clause ancilla `i`.
    pub fn a_line(&self, i: usize) -> usize {
        assert!(i < self.num_clauses);
        self.num_vars + self.num_dual + i
    }

    /// The helper line `b`.
    pub fn b_line(&self) -> usize {
        self.num_vars + self.num_dual + self.num_clauses
    }

    /// The result line `z`.
    pub fn z_line(&self) -> usize {
        self.b_line() + 1
    }

    /// Total circuit width.
    pub fn width(&self) -> usize {
        self.z_line() + 1
    }
}

/// Builds the clause-encoding circuit `U(c)` of Fig. 5(b): an MCT gate
/// whose controls test "every literal false" (positive literal ⇒ negative
/// control, negative literal ⇒ positive control), targeting the clause
/// ancilla, followed by a NOT — so the ancilla receives `a ⊕ c`.
///
/// # Errors
///
/// Returns [`MatchError`] if a literal's variable exceeds the layout.
pub fn clause_encoder(
    clause: &Clause,
    layout: &SatLayout,
    clause_index: usize,
) -> Result<[Gate; 2], MatchError> {
    let controls: Vec<Control> = clause
        .lits()
        .iter()
        .map(|l| {
            let line = layout.var_line(l.var.0);
            if l.negative {
                Control::positive(line)
            } else {
                Control::negative(line)
            }
        })
        .collect();
    let target = layout.a_line(clause_index);
    let mct = Gate::new(controls, target)?;
    Ok([mct, Gate::not(target)])
}

/// Builds `U(φ)`: the concatenation of all clause encoders. Self-inverse
/// (`U(φ)⁻¹ = U(φ)`), as the paper notes.
///
/// # Errors
///
/// Returns [`MatchError`] on malformed clauses (duplicate variable within a
/// clause, variable out of range) or if the layout exceeds the 64-line
/// classical representation (shrink the formula with
/// `revmatch_sat::minimize_unique` first).
pub fn u_phi(cnf: &Cnf, layout: &SatLayout) -> Result<Circuit, MatchError> {
    check_width(layout)?;
    let mut c = Circuit::new(layout.width());
    for (i, clause) in cnf.clauses().iter().enumerate() {
        for g in clause_encoder(clause, layout, i)? {
            c.push(g)?;
        }
    }
    Ok(c)
}

/// Builds the full UNIQUE-SAT encoding circuit `C1` of Fig. 5(a):
///
/// ```text
/// G_b · U(φ) · G_z · U(φ) · G_b · U(φ) · G_z · U(φ)
/// ```
///
/// where `G_b` flips `b` iff all ancillas are 0 (negative controls) and
/// `G_z` flips `z` iff all ancillas are 1 **and** `b` is 1 (positive
/// controls). Gate count: `4 · 2m + 4 = 8m + 4`. The output of the `z`
/// line is `z ⊕ f` with `f = φ(x) ∧ (ā_0 … ā_{m−1})`; every other line is
/// restored (Eq. 3).
///
/// # Errors
///
/// Same as [`u_phi`].
pub fn encode_unique_sat(cnf: &Cnf, layout: &SatLayout) -> Result<Circuit, MatchError> {
    check_width(layout)?;
    let u = u_phi(cnf, layout)?;
    let m = layout.num_clauses;
    let g_b = Gate::new(
        (0..m).map(|i| Control::negative(layout.a_line(i))),
        layout.b_line(),
    )?;
    let g_z = Gate::new(
        (0..m)
            .map(|i| Control::positive(layout.a_line(i)))
            .chain([Control::positive(layout.b_line())]),
        layout.z_line(),
    )?;
    let mut c = Circuit::new(layout.width());
    c.push(g_b.clone())?;
    let c = c
        .then(&u)?
        .then(&Circuit::from_gates(layout.width(), [g_z.clone()])?)?
        .then(&u)?
        .then(&Circuit::from_gates(layout.width(), [g_b])?)?
        .then(&u)?
        .then(&Circuit::from_gates(layout.width(), [g_z])?)?
        .then(&u)?;
    Ok(c)
}

/// Builds the comparison circuit `C2` of Fig. 5(c): one MCT gate with
/// positive controls on the `x` lines, negative controls on the `y` and
/// `a` lines, targeting `z` (the `b` line is uncontrolled). Its `z` output
/// is `z ⊕ g` with `g = (x_0 … x_{n−1}) ∧ (ȳ…) ∧ (ā…)`.
///
/// # Errors
///
/// Returns [`MatchError`] only if the layout is degenerate.
pub fn c2_circuit(layout: &SatLayout) -> Result<Circuit, MatchError> {
    check_width(layout)?;
    let controls = (0..layout.num_vars)
        .map(|i| Control::positive(layout.x_line(i)))
        .chain((0..layout.num_dual).map(|j| Control::negative(layout.y_line(j))))
        .chain((0..layout.num_clauses).map(|i| Control::negative(layout.a_line(i))));
    let gate = Gate::new(controls, layout.z_line())?;
    Ok(Circuit::from_gates(layout.width(), [gate])?)
}

fn check_width(layout: &SatLayout) -> Result<(), MatchError> {
    if layout.width() > revmatch_circuit::MAX_WIDTH {
        Err(MatchError::Circuit(
            revmatch_circuit::CircuitError::WidthTooLarge {
                width: layout.width(),
                max: revmatch_circuit::MAX_WIDTH,
            },
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmatch_sat::{Lit, Var};

    fn small_cnf() -> Cnf {
        // (x0 | !x1) & (x1 | x2)
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::new(vec![
            Lit::positive(Var(0)),
            Lit::negative(Var(1)),
        ]));
        cnf.add_clause(Clause::new(vec![
            Lit::positive(Var(1)),
            Lit::positive(Var(2)),
        ]));
        cnf
    }

    /// Evaluates φ on the x-part of a layout input.
    fn phi_value(cnf: &Cnf, x: u64) -> bool {
        let assignment: Vec<bool> = (0..cnf.num_vars()).map(|i| (x >> i) & 1 == 1).collect();
        cnf.eval(&assignment)
    }

    #[test]
    fn layout_lines_are_disjoint_and_ordered() {
        let cnf = small_cnf();
        let l = SatLayout::for_cnf(&cnf);
        assert_eq!(l.width(), 3 + 2 + 2);
        assert_eq!(l.x_line(2), 2);
        assert_eq!(l.a_line(0), 3);
        assert_eq!(l.b_line(), 5);
        assert_eq!(l.z_line(), 6);
    }

    #[test]
    fn clause_encoder_computes_a_xor_c() {
        let cnf = small_cnf();
        let l = SatLayout::for_cnf(&cnf);
        let mut c = Circuit::new(l.width());
        for g in clause_encoder(&cnf.clauses()[0], &l, 0).unwrap() {
            c.push(g).unwrap();
        }
        for x in 0..8u64 {
            for a in [0u64, 1] {
                let input = x | (a << l.a_line(0));
                let out = c.apply(input);
                let clause_val =
                    cnf.clauses()[0].eval(&(0..3).map(|i| (x >> i) & 1 == 1).collect::<Vec<_>>());
                let expect_a = a ^ u64::from(clause_val);
                assert_eq!((out >> l.a_line(0)) & 1, expect_a, "x={x} a={a}");
                // x lines unchanged.
                assert_eq!(out & 0b111, x);
            }
        }
    }

    #[test]
    fn u_phi_is_self_inverse() {
        let cnf = small_cnf();
        let l = SatLayout::for_cnf(&cnf);
        let u = u_phi(&cnf, &l).unwrap();
        let uu = u.then(&u).unwrap();
        assert!(uu.is_identity());
    }

    #[test]
    fn unique_sat_circuit_gate_count_is_8m_plus_4() {
        let cnf = small_cnf();
        let l = SatLayout::for_cnf(&cnf);
        let c1 = encode_unique_sat(&cnf, &l).unwrap();
        assert_eq!(c1.len(), 8 * cnf.num_clauses() + 4);
    }

    #[test]
    fn unique_sat_circuit_computes_eq3() {
        let cnf = small_cnf();
        let l = SatLayout::for_cnf(&cnf);
        let c1 = encode_unique_sat(&cnf, &l).unwrap();
        // Check the full Eq. 3 semantics on every input.
        for input in 0..1u64 << l.width() {
            let out = c1.apply(input);
            let x = input & 0b111;
            let a_all_zero = (0..2).all(|i| (input >> l.a_line(i)) & 1 == 0);
            let f = phi_value(&cnf, x) && a_all_zero;
            let expect = input ^ (u64::from(f) << l.z_line());
            assert_eq!(out, expect, "input={input:b}");
        }
    }

    #[test]
    fn c2_computes_and_of_x_and_not_a() {
        let cnf = small_cnf();
        let l = SatLayout::for_cnf(&cnf);
        let c2 = c2_circuit(&l).unwrap();
        assert_eq!(c2.len(), 1);
        for input in 0..1u64 << l.width() {
            let out = c2.apply(input);
            let xs_all_one = (0..3).all(|i| (input >> i) & 1 == 1);
            let a_all_zero = (0..2).all(|i| (input >> l.a_line(i)) & 1 == 0);
            let g = xs_all_one && a_all_zero;
            let expect = input ^ (u64::from(g) << l.z_line());
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn dual_rail_layout_lines() {
        // 2 primaries dual-railed: lines are [x(2) | y(2) | a(m') | b | z].
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::new(vec![Lit::positive(Var(0))]));
        let dr = crate::hardness::dual_rail(&cnf);
        let l = SatLayout::for_dual_rail(2, &dr);
        assert_eq!(l.num_vars, 2);
        assert_eq!(l.num_dual, 2);
        assert_eq!(l.x_line(1), 1);
        assert_eq!(l.y_line(0), 2);
        assert_eq!(l.a_line(0), 4);
        assert_eq!(l.width(), 2 + 2 + dr.num_clauses() + 2);
        // C2 over the dual layout: positive controls on x lines only,
        // negative on y and a lines, b uncontrolled.
        let c2 = c2_circuit(&l).unwrap();
        let g = &c2.gates()[0];
        assert_eq!(g.positive_mask(), 0b11);
        assert_eq!(
            g.control_mask(),
            (1u64 << l.b_line()) - 1,
            "controls cover exactly the x, y and a lines"
        );
    }

    #[test]
    fn empty_formula_edge_case() {
        // No clauses: f = true ∧ (empty ā conjunction) = φ = true for all x
        // — the z gate fires whenever b-line condition holds. Sanity: the
        // circuit still builds and restores non-z lines.
        let cnf = Cnf::new(2);
        let l = SatLayout::for_cnf(&cnf);
        let c1 = encode_unique_sat(&cnf, &l).unwrap();
        assert_eq!(c1.len(), 4);
        for input in 0..1u64 << l.width() {
            let out = c1.apply(input);
            let non_z = (1u64 << l.z_line()) - 1;
            assert_eq!(out & non_z, input & non_z);
        }
    }
}
