//! Theorem 2: UNIQUE-SAT ≤p N-N matching.
//!
//! Given a CNF `φ` promised to have at most one satisfying assignment, the
//! Fig. 5 circuits `C1` (UNIQUE-SAT encoding) and `C2` (comparison) are
//! N-N equivalent **iff** `φ` is satisfiable, and any N-N witness reveals
//! the satisfying assignment: `x*_i = ¬ν_x(i)`.

use revmatch_circuit::{LinePermutation, NegationMask, NpTransform};
use revmatch_sat::{Cnf, Solver};

use crate::error::MatchError;
use crate::hardness::encode::{c2_circuit, encode_unique_sat, SatLayout};
use crate::witness::MatchWitness;

/// A materialized UNIQUE-SAT → N-N reduction instance.
#[derive(Debug, Clone)]
pub struct NnReduction {
    /// The source formula.
    pub cnf: Cnf,
    /// Line layout shared by both circuits.
    pub layout: SatLayout,
    /// The UNIQUE-SAT encoding circuit (Fig. 5a), `8m + 4` gates.
    pub c1: revmatch_circuit::Circuit,
    /// The comparison circuit (Fig. 5c), one gate.
    pub c2: revmatch_circuit::Circuit,
}

impl NnReduction {
    /// Builds the reduction for a formula (promised — but not required —
    /// to have at most one model).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError`] if the formula contains malformed clauses
    /// (e.g. a repeated variable within one clause).
    pub fn new(cnf: Cnf) -> Result<Self, MatchError> {
        let layout = SatLayout::for_cnf(&cnf);
        let c1 = encode_unique_sat(&cnf, &layout)?;
        let c2 = c2_circuit(&layout)?;
        Ok(Self {
            cnf,
            layout,
            c1,
            c2,
        })
    }

    /// Transports a satisfying assignment into the N-N witness
    /// `(ν_x, ν_y)` with `C1 = C_{ν_y} C2 C_{ν_x}`: negate exactly the
    /// variable lines whose assignment is 0, identically on both sides.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != cnf.num_vars()`.
    pub fn witness_from_assignment(&self, assignment: &[bool]) -> MatchWitness {
        assert_eq!(assignment.len(), self.cnf.num_vars());
        let mut mask = 0u64;
        for (i, &value) in assignment.iter().enumerate() {
            if !value {
                mask |= 1 << self.layout.x_line(i);
            }
        }
        let width = self.layout.width();
        let nu = NegationMask::new(mask, width).expect("x lines within width");
        let t = NpTransform::new(nu, LinePermutation::identity(width)).expect("same width");
        MatchWitness {
            input: t.clone(),
            output: t,
        }
    }

    /// Extracts the satisfying assignment from an N-N witness:
    /// `x*_i = ¬ν_x(i)` (paper §5.1).
    pub fn assignment_from_witness(&self, witness: &MatchWitness) -> Vec<bool> {
        let nu = witness.nu_x();
        (0..self.cnf.num_vars())
            .map(|i| !nu.bit(self.layout.x_line(i)))
            .collect()
    }

    /// Solves the instance end to end with the DPLL solver: SAT ⇒ a
    /// verified N-N witness, UNSAT ⇒ `None` (the circuits are then not
    /// N-N equivalent, by Theorem 2).
    pub fn solve_via_sat(&self) -> Option<MatchWitness> {
        Solver::new(&self.cnf)
            .solve()
            .witness()
            .map(|assignment| self.witness_from_assignment(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{Equivalence, Side};
    use crate::matchers::brute_force_match;
    use crate::verify::{check_witness, VerifyMode};
    use rand::SeedableRng;
    use revmatch_sat::{planted_unique, Clause, Lit, Var};

    fn tiny_unique_cnf() -> (Cnf, Vec<bool>) {
        // x0 & !x1: unique model (1, 0).
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::new(vec![Lit::positive(Var(0))]));
        cnf.add_clause(Clause::new(vec![Lit::negative(Var(1))]));
        (cnf, vec![true, false])
    }

    #[test]
    fn witness_from_assignment_verifies() {
        let (cnf, model) = tiny_unique_cnf();
        let red = NnReduction::new(cnf).unwrap();
        let w = red.witness_from_assignment(&model);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(
            check_witness(&red.c1, &red.c2, &w, VerifyMode::Exhaustive, &mut rng).unwrap(),
            "assignment-derived witness must make C1 = C_ν C2 C_ν"
        );
        // And it is a genuine N-N witness (no permutation component).
        assert!(w.conforms_to(Equivalence::new(Side::N, Side::N)));
    }

    #[test]
    fn assignment_round_trips_through_witness() {
        let (cnf, model) = tiny_unique_cnf();
        let red = NnReduction::new(cnf).unwrap();
        let w = red.witness_from_assignment(&model);
        assert_eq!(red.assignment_from_witness(&w), model);
    }

    #[test]
    fn planted_instances_full_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for n in [2usize, 3] {
            let planted = planted_unique(n, 2.min(n), &mut rng).unwrap();
            let red = NnReduction::new(planted.cnf.clone()).unwrap();
            // Keep the circuit small enough for exhaustive verification.
            if red.layout.width() > 16 {
                continue;
            }
            let w = red.solve_via_sat().expect("satisfiable by construction");
            assert!(check_witness(&red.c1, &red.c2, &w, VerifyMode::Exhaustive, &mut rng).unwrap());
            assert_eq!(red.assignment_from_witness(&w), planted.assignment);
        }
    }

    #[test]
    fn unsat_formula_is_not_nn_equivalent() {
        // x0 & !x0 over one variable; tiny enough for brute force.
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::new(vec![Lit::positive(Var(0))]));
        cnf.add_clause(Clause::new(vec![Lit::negative(Var(0))]));
        let red = NnReduction::new(cnf).unwrap();
        assert!(red.solve_via_sat().is_none());
        // Brute force over all (ν_y, ν_x) confirms non-equivalence
        // (Theorem 2's "only if" direction).
        let found =
            brute_force_match(&red.c1, &red.c2, Equivalence::new(Side::N, Side::N)).unwrap();
        assert!(found.is_none(), "UNSAT instance must not match");
    }

    #[test]
    fn brute_force_nn_matcher_recovers_assignment() {
        // Theorem 2's point: an N-N matcher IS a UNIQUE-SAT solver. Here
        // the brute-force matcher plays that role on a tiny instance.
        let (cnf, model) = tiny_unique_cnf();
        let red = NnReduction::new(cnf).unwrap();
        let w = brute_force_match(&red.c1, &red.c2, Equivalence::new(Side::N, Side::N))
            .unwrap()
            .expect("satisfiable instance must match");
        // Any witness found must decode to the unique model on the
        // variable lines.
        assert_eq!(red.assignment_from_witness(&w), model);
    }

    #[test]
    fn gate_count_matches_paper() {
        let (cnf, _) = tiny_unique_cnf();
        let m = cnf.num_clauses();
        let red = NnReduction::new(cnf).unwrap();
        assert_eq!(red.c1.len(), 8 * m + 4);
        assert_eq!(red.c2.len(), 1);
    }
}
