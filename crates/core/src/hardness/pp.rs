//! Theorem 3: UNIQUE-SAT ≤p P-P matching.
//!
//! The formula is first **dual-railed**: for each variable `x_j` a partner
//! `y_j` with clauses `(x_j ∨ y_j) ∧ (x̄_j ∨ ȳ_j)` forcing `y_j = x̄_j`.
//! The Fig. 5 circuits over the extended layout are then P-P equivalent
//! iff `φ` is satisfiable, with the permutation witness swapping the
//! `x_j`/`y_j` lines exactly where `x*_j = 0` — routing the true rail into
//! `C2`'s positive-control region.

use revmatch_circuit::{LinePermutation, NegationMask, NpTransform};
use revmatch_sat::{Clause, Cnf, Lit, Solver, Var};

use crate::error::MatchError;
use crate::hardness::encode::{c2_circuit, encode_unique_sat, SatLayout};
use crate::witness::MatchWitness;

/// Dual-rails a formula: variables `0..n` keep their meaning, variables
/// `n..2n` are the complemented rails, and `2n` rail-consistency clauses
/// are appended (`φ′ = φ ∧ ⋀_j (x_j ∨ y_j)(x̄_j ∨ ȳ_j)`).
///
/// `φ` is satisfiable iff `φ′` is, and models correspond bijectively
/// (`y_j = x̄_j`).
pub fn dual_rail(cnf: &Cnf) -> Cnf {
    let n = cnf.num_vars();
    let mut out = Cnf::new(2 * n);
    for c in cnf.clauses() {
        out.add_clause(c.clone());
    }
    for j in 0..n {
        let x = Var(j);
        let y = Var(n + j);
        out.add_clause(Clause::new(vec![Lit::positive(x), Lit::positive(y)]));
        out.add_clause(Clause::new(vec![Lit::negative(x), Lit::negative(y)]));
    }
    out
}

/// A materialized UNIQUE-SAT → P-P reduction instance.
#[derive(Debug, Clone)]
pub struct PpReduction {
    /// The original (pre-dual-rail) formula.
    pub cnf: Cnf,
    /// The dual-railed formula actually encoded.
    pub cnf_dual: Cnf,
    /// Line layout (with `y` lines).
    pub layout: SatLayout,
    /// The UNIQUE-SAT encoding circuit of `φ′`.
    pub c1: revmatch_circuit::Circuit,
    /// The comparison circuit: positive controls on `x` lines, negative on
    /// `y` and `a` lines.
    pub c2: revmatch_circuit::Circuit,
}

impl PpReduction {
    /// Builds the reduction for a formula (promised to have at most one
    /// model).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError`] on malformed clauses.
    pub fn new(cnf: Cnf) -> Result<Self, MatchError> {
        let cnf_dual = dual_rail(&cnf);
        let layout = SatLayout::for_dual_rail(cnf.num_vars(), &cnf_dual);
        let c1 = encode_unique_sat(&cnf_dual, &layout)?;
        let c2 = c2_circuit(&layout)?;
        Ok(Self {
            cnf,
            cnf_dual,
            layout,
            c1,
            c2,
        })
    }

    /// Transports a satisfying assignment of `φ` into the P-P witness
    /// `(π_x, π_y)` with `C1 = C_{π_y} C2 C_{π_x}`: swap the `x_j`/`y_j`
    /// lines exactly where `x*_j = 0`, identically on both sides (the swap
    /// set is an involution, so `π_y = π_x⁻¹ = π_x`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != cnf.num_vars()`.
    pub fn witness_from_assignment(&self, assignment: &[bool]) -> MatchWitness {
        assert_eq!(assignment.len(), self.cnf.num_vars());
        let width = self.layout.width();
        let mut map: Vec<usize> = (0..width).collect();
        for (j, &value) in assignment.iter().enumerate() {
            if !value {
                map.swap(self.layout.x_line(j), self.layout.y_line(j));
            }
        }
        let pi = LinePermutation::new(map).expect("swaps preserve permutation");
        let t = NpTransform::new(NegationMask::identity(width), pi).expect("same width");
        MatchWitness {
            input: t.clone(),
            output: t,
        }
    }

    /// Extracts the satisfying assignment from a P-P witness:
    /// `x*_j = 1` iff line `x_j` stays in the positive-control region
    /// (`π_x(x_j) < n`, paper §5.2).
    pub fn assignment_from_witness(&self, witness: &MatchWitness) -> Vec<bool> {
        let pi = witness.pi_x();
        (0..self.cnf.num_vars())
            .map(|j| pi.apply_index(self.layout.x_line(j)) < self.cnf.num_vars())
            .collect()
    }

    /// Solves the instance end to end with the DPLL solver.
    pub fn solve_via_sat(&self) -> Option<MatchWitness> {
        Solver::new(&self.cnf)
            .solve()
            .witness()
            .map(|assignment| self.witness_from_assignment(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{Equivalence, Side};
    use crate::verify::{check_witness, VerifyMode};
    use rand::SeedableRng;

    fn tiny_unique_cnf() -> (Cnf, Vec<bool>) {
        // x0 & !x1: unique model (1, 0).
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::new(vec![Lit::positive(Var(0))]));
        cnf.add_clause(Clause::new(vec![Lit::negative(Var(1))]));
        (cnf, vec![true, false])
    }

    #[test]
    fn dual_rail_preserves_satisfiability() {
        let (cnf, model) = tiny_unique_cnf();
        let dr = dual_rail(&cnf);
        assert_eq!(dr.num_vars(), 4);
        assert_eq!(dr.num_clauses(), cnf.num_clauses() + 4);
        // The extended model (x*, x̄*) satisfies φ′.
        let extended: Vec<bool> = model
            .iter()
            .copied()
            .chain(model.iter().map(|&b| !b))
            .collect();
        assert!(dr.eval(&extended));
        // φ′ has exactly one model too.
        assert_eq!(dr.count_models_exhaustive(3), 1);
    }

    #[test]
    fn witness_from_assignment_verifies() {
        let (cnf, model) = tiny_unique_cnf();
        let red = PpReduction::new(cnf).unwrap();
        // Width = 4n + m + 2 with n=2, m=2 -> 12 lines; exhaustive is fine.
        assert_eq!(red.layout.width(), 4 * 2 + 2 + 2);
        let w = red.witness_from_assignment(&model);
        assert!(w.conforms_to(Equivalence::new(Side::P, Side::P)));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(
            check_witness(&red.c1, &red.c2, &w, VerifyMode::Exhaustive, &mut rng).unwrap(),
            "assignment-derived permutation witness must verify"
        );
    }

    #[test]
    fn assignment_round_trips() {
        let (cnf, model) = tiny_unique_cnf();
        let red = PpReduction::new(cnf).unwrap();
        let w = red.witness_from_assignment(&model);
        assert_eq!(red.assignment_from_witness(&w), model);
    }

    #[test]
    fn solve_via_sat_end_to_end() {
        let (cnf, model) = tiny_unique_cnf();
        let red = PpReduction::new(cnf).unwrap();
        let w = red.solve_via_sat().unwrap();
        assert_eq!(red.assignment_from_witness(&w), model);
    }

    #[test]
    fn unsat_instance_has_no_pp_witness_among_rail_swaps() {
        // For UNSAT φ, no rail-swap witness can verify (full brute force
        // over all permutations is out of reach at width 10, but the
        // reduction's own witness family is the relevant one).
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::new(vec![Lit::positive(Var(0))]));
        cnf.add_clause(Clause::new(vec![Lit::negative(Var(0))]));
        let red = PpReduction::new(cnf).unwrap();
        assert!(red.solve_via_sat().is_none());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for candidate in [vec![true], vec![false]] {
            let w = red.witness_from_assignment(&candidate);
            assert!(
                !check_witness(&red.c1, &red.c2, &w, VerifyMode::Exhaustive, &mut rng).unwrap(),
                "UNSAT instance verified a witness"
            );
        }
    }

    #[test]
    fn gate_count_is_8m_plus_4_over_dual_clauses() {
        let (cnf, _) = tiny_unique_cnf();
        let n = cnf.num_vars();
        let m = cnf.num_clauses();
        let red = PpReduction::new(cnf).unwrap();
        assert_eq!(red.c1.len(), 8 * (m + 2 * n) + 4);
        assert_eq!(red.c2.len(), 1);
        assert_eq!(red.layout.width(), 4 * n + m + 2);
    }
}
