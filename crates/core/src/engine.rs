//! Batch match engine: solve many promise instances concurrently.
//!
//! The matchers in this crate solve one promise instance at a time. A
//! production matching service faces the opposite shape: a stream of
//! independent instances that should saturate the hardware. This module
//! is the seed of that serving layer:
//!
//! * [`MatchEngine`] fans a slice of [`EngineJob`]s out over a pool of
//!   OS threads (`std::thread::scope` with an atomic work-stealing
//!   cursor — no external runtime), one oracle set per job so query
//!   accounting stays per-instance;
//! * oracles are optionally **precompiled** ([`Oracle::precompiled`])
//!   into dense tables, so each probe inside the solvers is a table
//!   load — combined with the batched probe rounds this is the
//!   fast path measured by the `batched_oracles` benchmark;
//! * [`BatchOutcome`] aggregates per-job results with total query and
//!   wall-clock accounting ([`BatchOutcome::instances_per_sec`]).
//!
//! Determinism: job `i` is solved with an RNG seeded from
//! `seed ⊕ f(i)`, independent of which worker picks it up, so a batch
//! solve is reproducible under any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use revmatch_circuit::Circuit;

use crate::equivalence::Equivalence;
use crate::error::MatchError;
use crate::matchers::{solve_promise, MatcherConfig, ProblemOracles};
use crate::oracle::Oracle;
use crate::promise::PromiseInstance;
use crate::witness::MatchWitness;

/// One matching problem for the engine: a promised pair plus the
/// resources the solver may assume.
#[derive(Debug, Clone)]
pub struct EngineJob {
    /// The promised equivalence type.
    pub equivalence: Equivalence,
    /// The transformed circuit.
    pub c1: Circuit,
    /// The base circuit.
    pub c2: Circuit,
    /// Whether the solver may derive and use inverse oracles (the
    /// paper's §3 variant).
    pub with_inverses: bool,
}

impl EngineJob {
    /// Builds a job from a generated [`PromiseInstance`].
    pub fn from_instance(instance: &PromiseInstance, with_inverses: bool) -> Self {
        Self {
            equivalence: instance.equivalence,
            c1: instance.c1.clone(),
            c2: instance.c2.clone(),
            with_inverses,
        }
    }
}

/// Result of one engine job.
#[derive(Debug)]
pub struct JobReport {
    /// The recovered witness, or why matching failed.
    pub witness: Result<MatchWitness, MatchError>,
    /// Oracle queries this job spent (across all its oracles).
    pub queries: u64,
}

/// Aggregate result of a batch solve.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job reports, in job order.
    pub reports: Vec<JobReport>,
    /// Total oracle queries across all jobs.
    pub total_queries: u64,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// Number of jobs whose witness was recovered.
    pub fn solved(&self) -> usize {
        self.reports.iter().filter(|r| r.witness.is_ok()).count()
    }

    /// Batch throughput in instances per second.
    pub fn instances_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.reports.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// A reusable concurrent solver for batches of promise instances.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use revmatch::{random_instance, EngineJob, Equivalence, MatchEngine, MatcherConfig, Side};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let jobs: Vec<EngineJob> = (0..8)
///     .map(|_| {
///         let inst = random_instance(Equivalence::new(Side::Np, Side::I), 5, &mut rng);
///         EngineJob::from_instance(&inst, true)
///     })
///     .collect();
/// let engine = MatchEngine::new(MatcherConfig::default()).with_workers(4);
/// let outcome = engine.solve_batch(&jobs, 7);
/// assert_eq!(outcome.solved(), 8);
/// # Ok::<(), revmatch::MatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MatchEngine {
    config: MatcherConfig,
    workers: usize,
    precompile: bool,
}

impl MatchEngine {
    /// An engine with one worker per available CPU and precompiled
    /// oracles enabled.
    pub fn new(config: MatcherConfig) -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            config,
            workers,
            precompile: true,
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables eager [`Oracle::precompiled`] dense-table
    /// backends (enabled by default; disable to measure the gate-walk
    /// path or to bound per-job memory).
    #[must_use]
    pub fn with_precompiled_oracles(mut self, precompile: bool) -> Self {
        self.precompile = precompile;
        self
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Solves one job (the worker body), returning its report.
    fn solve_job(&self, job: &EngineJob, seed: u64) -> JobReport {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let wrap = |c: Circuit| {
            if self.precompile {
                Oracle::precompiled(c)
            } else {
                Oracle::new(c)
            }
        };
        let c1 = wrap(job.c1.clone());
        let c2 = wrap(job.c2.clone());
        let (c1_inv, c2_inv) = if job.with_inverses {
            (Some(c1.inverse_oracle()), Some(c2.inverse_oracle()))
        } else {
            (None, None)
        };
        let oracles = ProblemOracles {
            c1: &c1,
            c2: &c2,
            c1_inv: c1_inv.as_ref(),
            c2_inv: c2_inv.as_ref(),
        };
        let witness = solve_promise(job.equivalence, &oracles, &self.config, &mut rng);
        JobReport {
            witness,
            queries: oracles.total_queries(),
        }
    }

    /// Solves every job, fanning out over the worker pool.
    ///
    /// Results come back in job order. `seed` makes the whole batch
    /// deterministic (each job's RNG depends only on `seed` and its
    /// index, not on scheduling).
    pub fn solve_batch(&self, jobs: &[EngineJob], seed: u64) -> BatchOutcome {
        let start = Instant::now();
        let mut slots: Vec<Option<JobReport>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        let slots = Mutex::new(slots);
        let cursor = AtomicUsize::new(0);
        let workers = self.workers.min(jobs.len()).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    // SplitMix-style index whitening keeps per-job seeds
                    // decorrelated.
                    let job_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let report = self.solve_job(&jobs[i], job_seed);
                    slots.lock().expect("no poisoned workers")[i] = Some(report);
                });
            }
        });

        let reports: Vec<JobReport> = slots
            .into_inner()
            .expect("scope joined all workers")
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect();
        let total_queries = reports.iter().map(|r| r.queries).sum();
        BatchOutcome {
            reports,
            total_queries,
            elapsed: start.elapsed(),
        }
    }

    /// Convenience wrapper: solve a slice of generated instances.
    pub fn solve_instances(
        &self,
        instances: &[PromiseInstance],
        with_inverses: bool,
        seed: u64,
    ) -> BatchOutcome {
        let jobs: Vec<EngineJob> = instances
            .iter()
            .map(|inst| EngineJob::from_instance(inst, with_inverses))
            .collect();
        self.solve_batch(&jobs, seed)
    }
}

/// Generates a reproducible batch of promise instances for load tests
/// and benchmarks (reproducibility comes from the caller's `rng` seed).
pub fn random_job_batch(
    equivalence: Equivalence,
    width: usize,
    count: usize,
    with_inverses: bool,
    rng: &mut impl Rng,
) -> Vec<EngineJob> {
    (0..count)
        .map(|_| {
            let inst = crate::promise::random_instance(equivalence, width, rng);
            EngineJob::from_instance(&inst, with_inverses)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::Side;
    use crate::lattice::classify;
    use crate::promise::random_instance;
    use crate::verify::{check_witness, VerifyMode};

    fn tractable_batch(width: usize, per_type: usize) -> (Vec<EngineJob>, Vec<PromiseInstance>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xE51E);
        let mut jobs = Vec::new();
        let mut instances = Vec::new();
        for e in Equivalence::all() {
            if !classify(e).is_tractable() {
                continue;
            }
            for _ in 0..per_type {
                let inst = random_instance(e, width, &mut rng);
                jobs.push(EngineJob::from_instance(&inst, true));
                instances.push(inst);
            }
        }
        (jobs, instances)
    }

    #[test]
    fn solves_mixed_batch_and_witnesses_verify() {
        let (jobs, instances) = tractable_batch(5, 2);
        let engine = MatchEngine::new(MatcherConfig::with_epsilon(1e-6)).with_workers(4);
        let outcome = engine.solve_batch(&jobs, 99);
        assert_eq!(outcome.reports.len(), jobs.len());
        assert_eq!(outcome.solved(), jobs.len());
        assert!(outcome.total_queries > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for (report, inst) in outcome.reports.iter().zip(&instances) {
            let w = report.witness.as_ref().expect("tractable job solved");
            assert!(
                check_witness(&inst.c1, &inst.c2, w, VerifyMode::Exhaustive, &mut rng).unwrap(),
                "{}",
                inst.equivalence
            );
        }
    }

    #[test]
    fn deterministic_under_any_worker_count() {
        let (jobs, _) = tractable_batch(4, 1);
        let engine = MatchEngine::new(MatcherConfig::with_epsilon(1e-6));
        let single = engine.clone().with_workers(1).solve_batch(&jobs, 7);
        let many = engine.with_workers(8).solve_batch(&jobs, 7);
        for (a, b) in single.reports.iter().zip(&many.reports) {
            assert_eq!(a.queries, b.queries);
            match (&a.witness, &b.witness) {
                (Ok(wa), Ok(wb)) => assert_eq!(wa, wb),
                (Err(_), Err(_)) => {}
                _ => panic!("worker count changed a job outcome"),
            }
        }
    }

    #[test]
    fn precompile_toggle_does_not_change_results_or_counts() {
        let (jobs, _) = tractable_batch(5, 1);
        let base = MatchEngine::new(MatcherConfig::with_epsilon(1e-6)).with_workers(2);
        let fast = base.clone().solve_batch(&jobs, 3);
        let slow = base.with_precompiled_oracles(false).solve_batch(&jobs, 3);
        assert_eq!(fast.total_queries, slow.total_queries);
        for (a, b) in fast.reports.iter().zip(&slow.reports) {
            assert_eq!(a.witness.as_ref().ok(), b.witness.as_ref().ok());
        }
    }

    #[test]
    fn intractable_jobs_report_errors_not_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let inst = random_instance(Equivalence::new(Side::N, Side::N), 3, &mut rng);
        let jobs = vec![EngineJob::from_instance(&inst, false)];
        let outcome = MatchEngine::new(MatcherConfig::default()).solve_batch(&jobs, 0);
        assert_eq!(outcome.solved(), 0);
        assert!(matches!(
            outcome.reports[0].witness,
            Err(MatchError::Intractable { .. })
        ));
    }

    #[test]
    fn empty_batch() {
        let outcome = MatchEngine::new(MatcherConfig::default()).solve_batch(&[], 0);
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.total_queries, 0);
        assert_eq!(outcome.solved(), 0);
    }

    #[test]
    fn throughput_metric_is_positive() {
        let (jobs, _) = tractable_batch(4, 1);
        let outcome = MatchEngine::new(MatcherConfig::default()).solve_batch(&jobs, 1);
        assert!(outcome.instances_per_sec() > 0.0);
        assert!(outcome.elapsed > Duration::ZERO);
    }

    #[test]
    fn random_job_batch_generates_requested_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let jobs = random_job_batch(Equivalence::new(Side::I, Side::P), 4, 6, true, &mut rng);
        assert_eq!(jobs.len(), 6);
        assert!(jobs.iter().all(|j| j.c1.width() == 4 && j.with_inverses));
    }
}
