//! Batch match engine: solve many promise instances concurrently.
//!
//! The matchers in this crate solve one promise instance at a time; the
//! serving layer in [`crate::service`] runs a persistent sharded worker
//! pool with an intake queue, backpressure and metrics. This module is
//! the slice-shaped compatibility surface between the two:
//!
//! * [`EngineJob`] / [`JobReport`] are the job and result types shared
//!   with the service;
//! * [`MatchEngine::solve_batch`] is a thin wrapper that spins up a
//!   [`crate::service::MatchService`] sized to the batch, submits every
//!   job with its deterministic per-index seed, waits for all tickets,
//!   and shuts the service down — existing batch callers keep working
//!   unchanged while streaming callers move to the service directly;
//! * [`BatchOutcome`] aggregates per-job results with total query and
//!   wall-clock accounting ([`BatchOutcome::instances_per_sec`]).
//!
//! Determinism: job `i` is solved with an RNG seeded from
//! `seed ⊕ (i · 0x9E3779B97F4A7C15)`, independent of which worker shard
//! picks it up, so a batch solve is reproducible under any worker count —
//! and identical between this wrapper and direct
//! [`crate::service::MatchService::submit_seeded`] calls with the same
//! per-job seeds.

use std::fmt;
use std::time::{Duration, Instant};

use rand::Rng;
use revmatch_circuit::Circuit;
use revmatch_sat::SolverBackend;

use crate::enumerate::WitnessFamily;
use crate::equivalence::Equivalence;
use crate::error::MatchError;
use crate::matchers::MatcherConfig;
use crate::miter::MiterVerdict;
use crate::promise::PromiseInstance;
use crate::service::{job_seed, JobTicket, MatchService, ServiceConfig};
use crate::witness::MatchWitness;

/// The five job families the serving stack executes — see [`JobSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JobKind {
    /// Promise matching: recover the witness of a promised X-Y pair.
    Promise,
    /// Non-promise identification: walk the Fig. 1 lattice for the
    /// minimal class explaining an arbitrary pair (§3).
    Identify,
    /// Inverse-free quantum matching of the classically-hard classes
    /// (N-I / NP-I) via swap tests or Simon-style sampling.
    Quantum,
    /// Direct complete equivalence check by SAT miter (white box).
    Sat,
    /// Witness enumeration: count every transform of a family explaining
    /// the pair, via incremental-assumption SAT over one shared solver.
    Enumerate,
}

impl JobKind {
    /// All five kinds, in metric-export order.
    pub const ALL: [JobKind; 5] = [
        JobKind::Promise,
        JobKind::Identify,
        JobKind::Quantum,
        JobKind::Sat,
        JobKind::Enumerate,
    ];

    /// The stable lowercase label used in metric names and flags.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Promise => "promise",
            JobKind::Identify => "identify",
            JobKind::Quantum => "quantum",
            JobKind::Sat => "sat",
            JobKind::Enumerate => "enumerate",
        }
    }

    /// Index into per-kind metric arrays (dense, `0..5`).
    pub(crate) fn index(self) -> usize {
        match self {
            JobKind::Promise => 0,
            JobKind::Identify => 1,
            JobKind::Quantum => 2,
            JobKind::Sat => 3,
            JobKind::Enumerate => 4,
        }
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for JobKind {
    type Err = MatchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "promise" => Ok(JobKind::Promise),
            "identify" => Ok(JobKind::Identify),
            "quantum" => Ok(JobKind::Quantum),
            "sat" => Ok(JobKind::Sat),
            "enumerate" => Ok(JobKind::Enumerate),
            other => Err(MatchError::Parse {
                reason: format!("unknown job kind {other:?}"),
            }),
        }
    }
}

/// One matching problem for the engine: a promised pair plus the
/// resources the solver may assume.
#[derive(Debug, Clone)]
pub struct EngineJob {
    /// The promised equivalence type.
    pub equivalence: Equivalence,
    /// The transformed circuit.
    pub c1: Circuit,
    /// The base circuit.
    pub c2: Circuit,
    /// Whether the solver may derive and use inverse oracles (the
    /// paper's §3 variant).
    pub with_inverses: bool,
    /// Whether a recovered witness must additionally be proven (or
    /// refuted) by a SAT miter on the service's configured backend —
    /// the complete, any-width check behind [`JobReport::miter`].
    pub sat_verify: bool,
}

impl EngineJob {
    /// Builds a job from a generated [`PromiseInstance`] (no SAT
    /// verification by default).
    pub fn from_instance(instance: &PromiseInstance, with_inverses: bool) -> Self {
        Self {
            equivalence: instance.equivalence,
            c1: instance.c1.clone(),
            c2: instance.c2.clone(),
            with_inverses,
            sat_verify: false,
        }
    }

    /// Requests complete SAT-miter verification of the recovered witness.
    #[must_use]
    pub fn with_sat_verification(mut self) -> Self {
        self.sat_verify = true;
        self
    }
}

/// A non-promise identification job: find the **minimal** equivalence
/// class explaining an arbitrary circuit pair (the §3 lattice walk).
#[derive(Debug, Clone)]
pub struct IdentifyJob {
    /// The transformed circuit.
    pub c1: Circuit,
    /// The base circuit.
    pub c2: Circuit,
    /// Whether the UNIQUE-SAT-hard classes may be brute-forced at small
    /// widths (expensive; off keeps identification polynomial).
    pub allow_brute_force: bool,
}

impl IdentifyJob {
    /// An identification job over a circuit pair (brute force allowed).
    pub fn new(c1: Circuit, c2: Circuit) -> Self {
        Self {
            c1,
            c2,
            allow_brute_force: true,
        }
    }

    /// Disables the brute-force fallback for the hard classes.
    #[must_use]
    pub fn without_brute_force(mut self) -> Self {
        self.allow_brute_force = false;
        self
    }
}

/// Which inverse-free quantum algorithm a [`QuantumPathJob`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantumAlgorithm {
    /// Swap-test probing: the paper's Algorithm 1 for N-I
    /// (`O(n log 1/ε)`) and its NP-I extension (`O(n² log 1/ε)`).
    SwapTest,
    /// Simon-style hidden-shift sampling (footnote 2): exact answer in
    /// `~n` rounds, N-I only, needs `2n + 1` simulated qubits.
    Simon,
}

/// A quantum-path job: solve a promised N-I or NP-I instance **without
/// inverses** — the classes Theorem 1 proves classically exponential.
#[derive(Debug, Clone)]
pub struct QuantumPathJob {
    /// The promised equivalence (must be N-I or NP-I; Simon is N-I only).
    pub equivalence: Equivalence,
    /// The transformed circuit.
    pub c1: Circuit,
    /// The base circuit.
    pub c2: Circuit,
    /// The algorithm to run.
    pub algorithm: QuantumAlgorithm,
}

/// A direct SAT-equivalence job: prove or refute `C1 = T_Y ∘ C2 ∘ T_X`
/// completely (any width) on the service's configured solver backend.
#[derive(Debug, Clone)]
pub struct SatEquivalenceJob {
    /// The transformed circuit.
    pub c1: Circuit,
    /// The base circuit.
    pub c2: Circuit,
    /// The claimed witness to fold into the miter; `None` checks plain
    /// I-I equivalence (identity witness).
    pub witness: Option<MatchWitness>,
}

/// A witness-enumeration job: count (and exhibit) **every** transform of
/// `family` explaining the pair, by an incremental-assumption SAT sweep
/// over one shared solver (see [`crate::enumerate`]).
#[derive(Debug, Clone)]
pub struct EnumerateJob {
    /// The transformed circuit.
    pub c1: Circuit,
    /// The base circuit.
    pub c2: Circuit,
    /// The candidate family to sweep.
    pub family: WitnessFamily,
}

impl EnumerateJob {
    /// An enumeration job over a circuit pair.
    pub fn new(c1: Circuit, c2: Circuit, family: WitnessFamily) -> Self {
        Self { c1, c2, family }
    }
}

/// A job for the serving stack: one of the five scenario families, all
/// flowing through the same intake queue, shard routing, caches and
/// metrics of [`crate::service::MatchService`].
///
/// [`EngineJob`] (the original promise job) converts losslessly via
/// `From`, so batch-shaped callers keep submitting plain `EngineJob`s.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Promise matching (optionally SAT-verified) — the PR-1/2 workload.
    Promise(EngineJob),
    /// Minimal-class identification of an arbitrary pair.
    Identify(IdentifyJob),
    /// Inverse-free quantum matching (N-I / NP-I).
    QuantumPath(QuantumPathJob),
    /// Complete white-box equivalence verdict by SAT miter.
    SatEquivalence(SatEquivalenceJob),
    /// Witness enumeration over a candidate family.
    Enumerate(EnumerateJob),
}

impl JobSpec {
    /// The job's kind tag (used for routing, metrics and cache keys).
    pub fn kind(&self) -> JobKind {
        match self {
            JobSpec::Promise(_) => JobKind::Promise,
            JobSpec::Identify(_) => JobKind::Identify,
            JobSpec::QuantumPath(_) => JobKind::Quantum,
            JobSpec::SatEquivalence(_) => JobKind::Sat,
            JobSpec::Enumerate(_) => JobKind::Enumerate,
        }
    }

    /// Circuit width of the job's pair.
    pub fn width(&self) -> usize {
        match self {
            JobSpec::Promise(j) => j.c1.width(),
            JobSpec::Identify(j) => j.c1.width(),
            JobSpec::QuantumPath(j) => j.c1.width(),
            JobSpec::SatEquivalence(j) => j.c1.width(),
            JobSpec::Enumerate(j) => j.c1.width(),
        }
    }

    /// The promised (or enumerated) equivalence, for the kinds that carry
    /// one (identification and plain SAT checks have no a-priori class).
    pub fn equivalence(&self) -> Option<Equivalence> {
        match self {
            JobSpec::Promise(j) => Some(j.equivalence),
            JobSpec::QuantumPath(j) => Some(j.equivalence),
            JobSpec::Enumerate(j) => Some(j.family.equivalence()),
            JobSpec::Identify(_) | JobSpec::SatEquivalence(_) => None,
        }
    }
}

impl From<EngineJob> for JobSpec {
    fn from(job: EngineJob) -> Self {
        JobSpec::Promise(job)
    }
}

impl From<IdentifyJob> for JobSpec {
    fn from(job: IdentifyJob) -> Self {
        JobSpec::Identify(job)
    }
}

impl From<QuantumPathJob> for JobSpec {
    fn from(job: QuantumPathJob) -> Self {
        JobSpec::QuantumPath(job)
    }
}

impl From<SatEquivalenceJob> for JobSpec {
    fn from(job: SatEquivalenceJob) -> Self {
        JobSpec::SatEquivalence(job)
    }
}

impl From<EnumerateJob> for JobSpec {
    fn from(job: EnumerateJob) -> Self {
        JobSpec::Enumerate(job)
    }
}

/// Result of one job, uniform across every [`JobSpec`] kind.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Which job family produced this report.
    pub kind: JobKind,
    /// The recovered witness, or why matching failed.
    ///
    /// Per kind: promise and quantum jobs report the matcher's witness;
    /// identification reports the validated minimal witness (or
    /// [`MatchError::NoEquivalence`] when no class explains the pair — a
    /// clean negative, not counted as a failure); SAT jobs report the
    /// proven witness on `Equivalent`, [`MatchError::PromiseViolated`]
    /// on a counterexample, [`MatchError::Inconclusive`] on budget
    /// exhaustion.
    pub witness: Result<MatchWitness, MatchError>,
    /// Oracle queries this job spent (across all its oracles; for
    /// identification, across the whole lattice walk).
    pub queries: u64,
    /// Oracle queries actually issued in batched rounds — equals
    /// [`queries`](JobReport::queries) except for matchers with a
    /// distinct paper metric (the N-I collision search).
    pub charged_queries: u64,
    /// Algorithm-specific round count (probe rounds, Simon sampling
    /// rounds); 0 when the matcher reports none.
    pub rounds: u64,
    /// The minimal equivalence found, for identification jobs.
    pub identified: Option<Equivalence>,
    /// Number of family witnesses found, for enumeration jobs (`Some(0)`
    /// proves the pair is not family-equivalent — a clean negative, with
    /// [`MatchError::NoEquivalence`] in the witness slot).
    pub witness_count: Option<u64>,
    /// SAT-miter verdict: present for SAT-equivalence jobs and for
    /// promise jobs that asked for verification
    /// ([`EngineJob::with_sat_verification`]) and recovered a witness.
    /// `Equivalent` proves the witness correct on every input;
    /// `Counterexample` refutes it (a verified promise job then counts
    /// as failed); `Unknown` means the per-job miter budget ran out.
    pub miter: Option<MiterVerdict>,
    /// Per-stage wall-clock breakdown, stamped by the service on every
    /// completed job whether tracing is enabled or not. Engine-batch
    /// reports (no queue, no service) carry the default zeros.
    pub timing: crate::observe::JobTiming,
}

/// Aggregate result of a batch solve.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job reports, in job order.
    pub reports: Vec<JobReport>,
    /// Total oracle queries across all jobs.
    pub total_queries: u64,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// Number of jobs whose witness was recovered.
    pub fn solved(&self) -> usize {
        self.reports.iter().filter(|r| r.witness.is_ok()).count()
    }

    /// Batch throughput in instances per second.
    pub fn instances_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.reports.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// A reusable concurrent solver for batches of promise instances.
///
/// Each `solve_batch` call runs on a fresh, batch-sized
/// [`MatchService`]; callers that submit continuously should hold a
/// long-lived service instead and skip the per-batch spawn/join cost.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use revmatch::{random_instance, EngineJob, Equivalence, MatchEngine, MatcherConfig, Side};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let jobs: Vec<EngineJob> = (0..8)
///     .map(|_| {
///         let inst = random_instance(Equivalence::new(Side::Np, Side::I), 5, &mut rng);
///         EngineJob::from_instance(&inst, true)
///     })
///     .collect();
/// let engine = MatchEngine::new(MatcherConfig::default()).with_workers(4);
/// let outcome = engine.solve_batch(&jobs, 7);
/// assert_eq!(outcome.solved(), 8);
/// # Ok::<(), revmatch::MatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MatchEngine {
    config: MatcherConfig,
    workers: usize,
    precompile: bool,
    solver_backend: SolverBackend,
}

impl MatchEngine {
    /// An engine with one worker per available CPU, precompiled oracles
    /// enabled, and the CDCL backend for SAT-verified jobs.
    pub fn new(config: MatcherConfig) -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            config,
            workers,
            precompile: true,
            solver_backend: SolverBackend::default(),
        }
    }

    /// Picks the SAT backend used when jobs request miter verification
    /// ([`EngineJob::with_sat_verification`]).
    #[must_use]
    pub fn with_solver_backend(mut self, backend: SolverBackend) -> Self {
        self.solver_backend = backend;
        self
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables eager [`crate::Oracle::precompiled`]
    /// dense-table backends (enabled by default; disable to measure the
    /// gate-walk path or to bound per-job memory).
    #[must_use]
    pub fn with_precompiled_oracles(mut self, precompile: bool) -> Self {
        self.precompile = precompile;
        self
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Solves every job on a batch-sized [`MatchService`].
    ///
    /// Results come back in job order. `seed` makes the whole batch
    /// deterministic (each job's RNG depends only on `seed` and its
    /// index, not on scheduling or shard placement).
    pub fn solve_batch(&self, jobs: &[EngineJob], seed: u64) -> BatchOutcome {
        let start = Instant::now();
        if jobs.is_empty() {
            return BatchOutcome {
                reports: Vec::new(),
                total_queries: 0,
                elapsed: start.elapsed(),
            };
        }
        let shards = self.workers.min(jobs.len()).max(1);
        let service = MatchService::start(
            ServiceConfig::default()
                .with_shards(shards)
                .with_queue_capacity(jobs.len().div_ceil(shards))
                .with_matcher(self.config.clone())
                .with_precompiled_oracles(self.precompile)
                .with_solver_backend(self.solver_backend)
                .with_seed(seed),
        );
        // Total intake capacity covers the batch, so no submit blocks.
        let tickets: Vec<JobTicket> = jobs
            .iter()
            .enumerate()
            .map(|(i, job)| service.submit_wait_seeded(job.clone(), job_seed(seed, i as u64)))
            .collect();
        let reports: Vec<JobReport> = tickets.into_iter().map(JobTicket::wait).collect();
        service.shutdown();
        let total_queries = reports.iter().map(|r| r.queries).sum();
        BatchOutcome {
            reports,
            total_queries,
            elapsed: start.elapsed(),
        }
    }

    /// Convenience wrapper: solve a slice of generated instances.
    pub fn solve_instances(
        &self,
        instances: &[PromiseInstance],
        with_inverses: bool,
        seed: u64,
    ) -> BatchOutcome {
        let jobs: Vec<EngineJob> = instances
            .iter()
            .map(|inst| EngineJob::from_instance(inst, with_inverses))
            .collect();
        self.solve_batch(&jobs, seed)
    }
}

/// Generates a reproducible batch of promise instances for load tests
/// and benchmarks (reproducibility comes from the caller's `rng` seed).
pub fn random_job_batch(
    equivalence: Equivalence,
    width: usize,
    count: usize,
    with_inverses: bool,
    rng: &mut impl Rng,
) -> Vec<EngineJob> {
    (0..count)
        .map(|_| {
            let inst = crate::promise::random_instance(equivalence, width, rng);
            EngineJob::from_instance(&inst, with_inverses)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::Side;
    use crate::lattice::classify;
    use crate::promise::random_instance;
    use crate::verify::{check_witness, VerifyMode};
    use rand::SeedableRng;

    fn tractable_batch(width: usize, per_type: usize) -> (Vec<EngineJob>, Vec<PromiseInstance>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xE51E);
        let mut jobs = Vec::new();
        let mut instances = Vec::new();
        for e in Equivalence::all() {
            if !classify(e).is_tractable() {
                continue;
            }
            for _ in 0..per_type {
                let inst = random_instance(e, width, &mut rng);
                jobs.push(EngineJob::from_instance(&inst, true));
                instances.push(inst);
            }
        }
        (jobs, instances)
    }

    #[test]
    fn solves_mixed_batch_and_witnesses_verify() {
        let (jobs, instances) = tractable_batch(5, 2);
        let engine = MatchEngine::new(MatcherConfig::with_epsilon(1e-6)).with_workers(4);
        let outcome = engine.solve_batch(&jobs, 99);
        assert_eq!(outcome.reports.len(), jobs.len());
        assert_eq!(outcome.solved(), jobs.len());
        assert!(outcome.total_queries > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for (report, inst) in outcome.reports.iter().zip(&instances) {
            let w = report.witness.as_ref().expect("tractable job solved");
            assert!(
                check_witness(&inst.c1, &inst.c2, w, VerifyMode::Exhaustive, &mut rng).unwrap(),
                "{}",
                inst.equivalence
            );
        }
    }

    #[test]
    fn deterministic_under_any_worker_count() {
        let (jobs, _) = tractable_batch(4, 1);
        let engine = MatchEngine::new(MatcherConfig::with_epsilon(1e-6));
        let single = engine.clone().with_workers(1).solve_batch(&jobs, 7);
        let many = engine.with_workers(8).solve_batch(&jobs, 7);
        for (a, b) in single.reports.iter().zip(&many.reports) {
            assert_eq!(a.queries, b.queries);
            match (&a.witness, &b.witness) {
                (Ok(wa), Ok(wb)) => assert_eq!(wa, wb),
                (Err(_), Err(_)) => {}
                _ => panic!("worker count changed a job outcome"),
            }
        }
    }

    #[test]
    fn precompile_toggle_does_not_change_results_or_counts() {
        let (jobs, _) = tractable_batch(5, 1);
        let base = MatchEngine::new(MatcherConfig::with_epsilon(1e-6)).with_workers(2);
        let fast = base.clone().solve_batch(&jobs, 3);
        let slow = base.with_precompiled_oracles(false).solve_batch(&jobs, 3);
        assert_eq!(fast.total_queries, slow.total_queries);
        for (a, b) in fast.reports.iter().zip(&slow.reports) {
            assert_eq!(a.witness.as_ref().ok(), b.witness.as_ref().ok());
        }
    }

    #[test]
    fn intractable_jobs_report_errors_not_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let inst = random_instance(Equivalence::new(Side::N, Side::N), 3, &mut rng);
        let jobs = vec![EngineJob::from_instance(&inst, false)];
        let outcome = MatchEngine::new(MatcherConfig::default()).solve_batch(&jobs, 0);
        assert_eq!(outcome.solved(), 0);
        assert!(matches!(
            outcome.reports[0].witness,
            Err(MatchError::Intractable { .. })
        ));
    }

    #[test]
    fn empty_batch() {
        let outcome = MatchEngine::new(MatcherConfig::default()).solve_batch(&[], 0);
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.total_queries, 0);
        assert_eq!(outcome.solved(), 0);
    }

    #[test]
    fn throughput_metric_is_positive() {
        let (jobs, _) = tractable_batch(4, 1);
        let outcome = MatchEngine::new(MatcherConfig::default()).solve_batch(&jobs, 1);
        assert!(outcome.instances_per_sec() > 0.0);
        assert!(outcome.elapsed > Duration::ZERO);
    }

    #[test]
    fn random_job_batch_generates_requested_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let jobs = random_job_batch(Equivalence::new(Side::I, Side::P), 4, 6, true, &mut rng);
        assert_eq!(jobs.len(), 6);
        assert!(jobs.iter().all(|j| j.c1.width() == 4 && j.with_inverses));
    }

    #[test]
    fn wrapper_matches_direct_service_submission() {
        let (jobs, _) = tractable_batch(4, 1);
        let engine = MatchEngine::new(MatcherConfig::with_epsilon(1e-6)).with_workers(3);
        let batch = engine.solve_batch(&jobs, 21);
        let service = MatchService::start(
            ServiceConfig::default()
                .with_shards(2)
                .with_matcher(MatcherConfig::with_epsilon(1e-6)),
        );
        let tickets: Vec<JobTicket> = jobs
            .iter()
            .enumerate()
            .map(|(i, job)| service.submit_wait_seeded(job.clone(), job_seed(21, i as u64)))
            .collect();
        for (ticket, via_batch) in tickets.into_iter().zip(&batch.reports) {
            let direct = ticket.wait();
            assert_eq!(direct.queries, via_batch.queries);
            assert_eq!(
                direct.witness.as_ref().ok(),
                via_batch.witness.as_ref().ok()
            );
        }
        service.shutdown();
    }
}
