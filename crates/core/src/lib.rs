//! # revmatch — Boolean matching of reversible circuits
//!
//! A faithful, self-contained implementation of *“Boolean Matching
//! Reversible Circuits: Algorithm and Complexity”* (Chen & Jiang, DAC
//! 2024): given two black-box reversible circuits promised to be
//! equivalent up to input/output negations and permutations, find the
//! witness conditions — counting every oracle query.
//!
//! ## The problem
//!
//! For `X, Y ∈ {I, N, P, NP}`, circuits `C1`, `C2` are **X-Y equivalent**
//! when `C1 = T_Y ∘ C2 ∘ T_X` with `T_X` (resp. `T_Y`) drawn from the
//! class `X` (resp. `Y`) of negation/permutation transforms. The
//! complexity landscape ([`classify`], Fig. 1 of the paper) splits the 16
//! types into classically easy, quantum-easy (N-I, NP-I — classically
//! exponential by Theorem 1), conditionally easy (N-P), and
//! UNIQUE-SAT-hard (everything subsuming N-N or P-P).
//!
//! ## Quick start
//!
//! ```
//! use revmatch::{
//!     check_witness, random_instance, solve_promise, Equivalence, MatcherConfig,
//!     Oracle, ProblemOracles, Side, VerifyMode,
//! };
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // A promised NP-I-equivalent pair with a hidden (ν, π).
//! let inst = random_instance(Equivalence::new(Side::Np, Side::I), 5, &mut rng);
//!
//! // Black boxes (with inverses, as the paper's §3 variant allows).
//! let c1 = Oracle::new(inst.c1.clone());
//! let c2 = Oracle::new(inst.c2.clone());
//! let c2_inv = c2.inverse_oracle();
//! let oracles = ProblemOracles {
//!     c1: &c1, c2: &c2, c1_inv: None, c2_inv: Some(&c2_inv),
//! };
//!
//! // Recover the hidden conditions in O(log n) queries…
//! let witness = solve_promise(inst.equivalence, &oracles, &MatcherConfig::default(), &mut rng)?;
//!
//! // …and validate them with the single-round check of §3.
//! assert!(check_witness(&inst.c1, &inst.c2, &witness, VerifyMode::Exhaustive, &mut rng)?);
//! assert!(oracles.total_queries() <= 10);
//! # Ok::<(), revmatch::MatchError>(())
//! ```
//!
//! ## Crate map
//!
//! * [`equivalence`], [`lattice`] — the 16 X-Y types and the Fig. 1
//!   domination lattice (with Graphviz export);
//! * [`oracle`] — query-counted black boxes (classical, quantum, and the
//!   XOR-oracle form used by Simon-style algorithms);
//! * [`matchers`] — every algorithm of Table 1, the classical collision
//!   baseline of Theorem 1, the Simon-style hidden-shift matcher, a
//!   brute-force matcher and witness counting — all registered behind
//!   the [`Matcher`] trait in a [`MatcherRegistry`] keyed by
//!   `(Equivalence, InverseAvailability, Path)` and returning a uniform
//!   [`MatchReport`];
//! * [`engine`] — the job model ([`JobSpec`]: promise, identify,
//!   quantum-path and SAT-equivalence jobs) plus the batch-shaped front
//!   end solving a slice of promise instances with aggregate accounting;
//! * [`service`] — the sharded serving layer underneath it: persistent
//!   worker shards, a bounded intake queue with backpressure, per-job
//!   completion tickets and Prometheus-style metrics with per-kind
//!   counters and latency;
//! * [`observe`] — opt-in job tracing: lock-free per-shard span rings
//!   over the `submit → queue_wait → … → execute → report` lifecycle,
//!   drained to Chrome trace-event JSON, plus the per-job
//!   [`JobTiming`] breakdown every completed job carries;
//! * [`hardness`] — the Fig. 5 UNIQUE-SAT encodings behind Theorems 2–3;
//! * [`miter`] — complete SAT-based equivalence/witness checking with
//!   counterexamples, backend-parameterized over [`SolverBackend`]
//!   (CDCL default, DPLL for differential testing);
//! * [`identify`] — minimal-class identification for non-promised pairs;
//! * [`promise`], [`verify`], [`witness`] — instance generation, witness
//!   types and the single-round validation.
//!
//! ## Batched probes and backend selection
//!
//! Every classical probe loop in [`matchers`] issues its probes through
//! [`oracle::ClassicalOracle::query_batch`]: the binary-code rounds of
//! §4.2, the one-hot scans of §4.4, the randomized signature rounds of
//! Eq. 1 and the Theorem-1 collision sweeps all hand the oracle one
//! probe group per round. A batch of `k` probes always counts exactly
//! `k` oracle queries — batching changes execution, never the paper's
//! accounting.
//!
//! Execution backends (see `revmatch_circuit::batch`):
//!
//! * **bit-sliced** — 64 probes are transposed into per-line `u64`
//!   lanes and the gate cascade is walked once per block; the default
//!   for every [`Oracle`].
//! * **dense table** — [`Oracle::precompiled`] compiles circuits of
//!   width ≤ 20 into a `2^n` lookup table (built with one bit-sliced
//!   sweep), making each probe a single load. The automatic rule
//!   (`EvalBackend::select`) picks dense tables at width ≤ 16 — the
//!   table costs ≤ 512 KiB and amortizes after `2^n / 64` probes —
//!   and bit-slicing beyond.
//!
//! The [`service`] module scales this across instances:
//! [`MatchService`] runs persistent worker shards behind a bounded
//! intake queue with explicit backpressure, deterministic per-job
//! seeding and a metrics registry — see its module docs for the
//! serving-layer design. [`MatchEngine::solve_batch`] remains the
//! slice-shaped wrapper over it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod enumerate;
pub mod equivalence;
pub mod error;
pub mod hardness;
pub mod identify;
pub mod lattice;
pub mod matchers;
pub mod miter;
pub mod observe;
pub mod oracle;
pub mod promise;
pub mod service;
pub mod verify;
pub mod wire;
pub mod witness;

pub use engine::{
    random_job_batch, BatchOutcome, EngineJob, EnumerateJob, IdentifyJob, JobKind, JobReport,
    JobSpec, MatchEngine, QuantumAlgorithm, QuantumPathJob, SatEquivalenceJob,
};
pub use enumerate::{
    count_witnesses_sat, enumerate_witnesses_sat, enumerate_witnesses_sat_with, sweep_family,
    EnumerationStrategy, FamilyMiter, WitnessEnumeration, WitnessFamily,
};
pub use equivalence::{Equivalence, Side};
pub use error::MatchError;
pub use hardness::{dual_rail, NnReduction, PpReduction, SatLayout};
pub use identify::{
    identify_equivalence, identify_equivalence_with_oracles, Identification, IdentifyOptions,
};
pub use lattice::{classify, hasse_dot, hasse_edges, render_lattice, Complexity, DominationEdge};
pub use matchers::{
    brute_force_match, count_witnesses, match_i_n, match_i_np_randomized,
    match_i_np_via_c1_inverse, match_i_np_via_c2_inverse, match_i_p_randomized,
    match_i_p_via_c1_inverse, match_i_p_via_c2_inverse, match_n_i_collision, match_n_i_quantum,
    match_n_i_simon, match_n_i_simon_with, match_n_i_via_c1_inverse, match_n_i_via_c2_inverse,
    match_n_p_via_inverses, match_np_i_quantum, match_np_i_via_c1_inverse,
    match_np_i_via_c2_inverse, match_p_i_one_hot, match_p_i_via_c1_inverse,
    match_p_i_via_c2_inverse, match_p_n, match_p_n_via_inverses, solve_promise,
    solve_promise_report, InverseAvailability, MatchReport, Matcher, MatcherConfig,
    MatcherRegistry, Path, ProblemOracles, Verdict,
};
pub use miter::{
    check_equivalence_sat, check_equivalence_sat_budgeted, check_equivalence_sat_budgeted_with,
    check_equivalence_sat_with, check_witness_sat, check_witness_sat_budgeted,
    check_witness_sat_budgeted_with, check_witness_sat_with, MiterEncoding, MiterVerdict,
    SatEquivalence,
};
pub use observe::{
    chrome_trace_json, slowest_jobs, Detail, JobBreakdown, JobTiming, SpanRecord, Stage,
    TraceConfig, Tracer,
};
pub use oracle::{
    ClassicalOracle, ComposedOracle, Oracle, QuantumOracle, XorInputOracle, XorOutputOracle,
};
pub use promise::{random_instance, random_instance_from, random_wide_instance, PromiseInstance};
pub use revmatch_sat::{SatOptions, SolverBackend};
pub use service::{
    job_seed, AdmissionConfig, Histogram, JobTicket, MatchService, Metrics, RebalanceConfig,
    RebalanceMove, ServiceConfig, SubmitOutcome, DEFAULT_MITER_BUDGET,
};
pub use verify::{check_witness, VerifyMode};
pub use wire::{
    read_client_frame, read_server_frame, write_client_frame, write_server_frame, ClientFrame,
    ServerFrame, WireError, MAX_FRAME_LEN,
};
pub use witness::MatchWitness;

#[cfg(test)]
mod dispatcher_tests {
    use super::*;
    use rand::SeedableRng;

    /// The dispatcher solves every tractable type, with and without
    /// inverses, and the recovered witness verifies functionally.
    #[test]
    fn solve_promise_covers_every_tractable_type() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let config = MatcherConfig::with_epsilon(1e-6);
        for e in Equivalence::all() {
            if !classify(e).is_tractable() {
                continue;
            }
            for with_inverses in [true, false] {
                // N-P without both inverses is the open problem.
                if e == Equivalence::new(Side::N, Side::P) && !with_inverses {
                    continue;
                }
                let inst = random_instance(e, 5, &mut rng);
                let c1 = Oracle::new(inst.c1.clone());
                let c2 = Oracle::new(inst.c2.clone());
                let c1_inv = c1.inverse_oracle();
                let c2_inv = c2.inverse_oracle();
                let oracles = if with_inverses {
                    ProblemOracles::with_inverses(&c1, &c2, &c1_inv, &c2_inv)
                } else {
                    ProblemOracles::without_inverses(&c1, &c2)
                };
                let witness = solve_promise(e, &oracles, &config, &mut rng)
                    .unwrap_or_else(|err| panic!("{e} (inverses: {with_inverses}): {err}"));
                assert!(witness.conforms_to(e), "{e}");
                assert!(
                    check_witness(
                        &inst.c1,
                        &inst.c2,
                        &witness,
                        VerifyMode::Exhaustive,
                        &mut rng
                    )
                    .unwrap(),
                    "{e} (inverses: {with_inverses}) returned a wrong witness"
                );
            }
        }
    }

    #[test]
    fn solve_promise_rejects_hard_types() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let config = MatcherConfig::default();
        for e in Equivalence::all() {
            if classify(e).is_tractable() {
                continue;
            }
            let inst = random_instance(e, 3, &mut rng);
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            let oracles = ProblemOracles::without_inverses(&c1, &c2);
            assert!(matches!(
                solve_promise(e, &oracles, &config, &mut rng),
                Err(MatchError::Intractable { .. })
            ));
        }
    }

    #[test]
    fn solve_promise_np_open_problem() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let config = MatcherConfig::default();
        let e = Equivalence::new(Side::N, Side::P);
        let inst = random_instance(e, 4, &mut rng);
        let c1 = Oracle::new(inst.c1);
        let c2 = Oracle::new(inst.c2);
        let oracles = ProblemOracles::without_inverses(&c1, &c2);
        assert!(matches!(
            solve_promise(e, &oracles, &config, &mut rng),
            Err(MatchError::OpenProblem { .. })
        ));
    }

    /// Brute force agrees with the fast matchers on every tractable type.
    #[test]
    fn brute_force_cross_validates_dispatcher() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let config = MatcherConfig::with_epsilon(1e-6);
        for e in Equivalence::all() {
            if !classify(e).is_tractable() || e == Equivalence::new(Side::N, Side::P) {
                continue;
            }
            let inst = random_instance(e, 4, &mut rng);
            let c1 = Oracle::new(inst.c1.clone());
            let c2 = Oracle::new(inst.c2.clone());
            let fast = solve_promise(
                e,
                &ProblemOracles::without_inverses(&c1, &c2),
                &config,
                &mut rng,
            )
            .unwrap();
            let brute = brute_force_match(&inst.c1, &inst.c2, e).unwrap().unwrap();
            // Witnesses may differ; both must verify.
            for w in [fast, brute] {
                assert!(
                    check_witness(&inst.c1, &inst.c2, &w, VerifyMode::Exhaustive, &mut rng)
                        .unwrap()
                );
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Inverse-assisted matchers recover witnesses for arbitrary
        /// random instances (any seed, widths 2–7).
        #[test]
        fn inverse_matchers_always_succeed(seed in any::<u64>(), w in 2usize..=7) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let config = MatcherConfig::with_epsilon(1e-9);
            for e in [
                Equivalence::new(Side::I, Side::Np),
                Equivalence::new(Side::Np, Side::I),
                Equivalence::new(Side::P, Side::N),
                Equivalence::new(Side::N, Side::P),
            ] {
                let inst = random_instance(e, w, &mut rng);
                let c1 = Oracle::new(inst.c1.clone());
                let c2 = Oracle::new(inst.c2.clone());
                let c1_inv = c1.inverse_oracle();
                let c2_inv = c2.inverse_oracle();
                let oracles = ProblemOracles::with_inverses(&c1, &c2, &c1_inv, &c2_inv);
                let witness = solve_promise(e, &oracles, &config, &mut rng).unwrap();
                prop_assert!(check_witness(
                    &inst.c1, &inst.c2, &witness, VerifyMode::Exhaustive, &mut rng
                ).unwrap(), "{}", e);
            }
        }

        /// The witness recovered by the quantum Algorithm 1 equals the
        /// planted ν for any N-I instance.
        #[test]
        fn algorithm1_recovers_planted_nu(seed in any::<u64>(), w in 1usize..=6) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let config = MatcherConfig::with_epsilon(1e-9);
            let inst = random_instance(Equivalence::new(Side::N, Side::I), w, &mut rng);
            let c1 = Oracle::new(inst.c1.clone());
            let c2 = Oracle::new(inst.c2.clone());
            let nu = match_n_i_quantum(&c1, &c2, &config, &mut rng).unwrap();
            prop_assert_eq!(nu, inst.witness.nu_x());
        }

        /// The SAT miter agrees with exhaustive functional comparison on
        /// arbitrary circuit pairs (equivalent or not), on *both* solver
        /// backends — the CDCL/DPLL differential for structured (miter)
        /// encodings.
        #[test]
        fn miter_agrees_with_exhaustive(seed in any::<u64>(), w in 1usize..=5) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Mix of equivalent and non-equivalent pairs.
            let a = revmatch_circuit::random_circuit(
                &revmatch_circuit::RandomCircuitSpec::for_width(w), &mut rng);
            let b = if seed.is_multiple_of(2) {
                // Structurally different, functionally equal.
                revmatch_circuit::synthesize(
                    &a.truth_table().unwrap(),
                    revmatch_circuit::SynthesisStrategy::Basic,
                ).unwrap()
            } else {
                revmatch_circuit::random_circuit(
                    &revmatch_circuit::RandomCircuitSpec::for_width(w), &mut rng)
            };
            for backend in SolverBackend::ALL {
                let verdict = check_equivalence_sat_with(&a, &b, backend).unwrap();
                prop_assert_eq!(
                    verdict.is_equivalent(),
                    a.functionally_eq(&b),
                    "{} disagrees with exhaustive comparison",
                    backend
                );
                if let SatEquivalence::Counterexample { input } = verdict {
                    prop_assert_ne!(a.apply(input), b.apply(input));
                }
            }
        }

        /// The Simon matcher recovers ν exactly for arbitrary instances.
        #[test]
        fn simon_recovers_planted_nu(seed in any::<u64>(), w in 1usize..=6) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let inst = random_instance(Equivalence::new(Side::N, Side::I), w, &mut rng);
            let c1 = Oracle::new(inst.c1.clone());
            let c2 = Oracle::new(inst.c2.clone());
            let outcome = match_n_i_simon(&c1, &c2, &mut rng).unwrap();
            prop_assert_eq!(outcome.witness.nu_x(), inst.witness.nu_x());
        }

        /// Query counts respect Table 1 bounds (inverse-assisted rows).
        #[test]
        fn table1_query_bounds_hold(seed in any::<u64>(), w in 2usize..=7) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let config = MatcherConfig::default();
            let log_n = crate::matchers::ceil_log2(w) as u64;
            // I-N without inverse: exactly 2 queries.
            let inst = random_instance(Equivalence::new(Side::I, Side::N), w, &mut rng);
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            let oracles = ProblemOracles::without_inverses(&c1, &c2);
            solve_promise(inst.equivalence, &oracles, &config, &mut rng).unwrap();
            prop_assert_eq!(oracles.total_queries(), 2);
            // NP-I with inverse: 2(1 + ⌈log2 n⌉) queries.
            let inst = random_instance(Equivalence::new(Side::Np, Side::I), w, &mut rng);
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            let c1_inv = c1.inverse_oracle();
            let c2_inv = c2.inverse_oracle();
            let oracles = ProblemOracles::with_inverses(&c1, &c2, &c1_inv, &c2_inv);
            solve_promise(inst.equivalence, &oracles, &config, &mut rng).unwrap();
            prop_assert!(oracles.total_queries() <= 2 * (1 + log_n));
        }
    }
}
