//! The Fig. 1 domination lattice and complexity classification.
//!
//! Figure 1 of the paper arranges the 16 equivalences in a Hasse diagram of
//! the domination (subsumption) relation and colours each node by
//! complexity: ovals are easy (classical or quantum polynomial time),
//! rectangles are UNIQUE-SAT-hard, the gray-blue ovals (N-I, NP-I) are
//! quantum-but-not-classically easy, and the dashed oval (N-P) is
//! conditionally easy (both inverses required; quantum complexity open).

use std::fmt;

use crate::equivalence::{Equivalence, Side};

/// Complexity classification of an equivalence type (the Fig. 1 colouring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// Classical polynomial-time solvable (plain ovals).
    ClassicalEasy,
    /// Quantum polynomial-time solvable; classically exponential without
    /// inverses (gray-blue ovals: N-I and NP-I, Theorem 1 + Algorithm 1).
    QuantumEasy,
    /// Classically easy only when both inverses are available; quantum
    /// complexity open (dashed oval: N-P, paper §4.8).
    ConditionallyEasy,
    /// No easier than UNIQUE-SAT (rectangles, Theorems 2–3 and Fig. 1).
    UniqueSatHard,
}

impl Complexity {
    /// Whether a polynomial-time matcher (of any paradigm, possibly
    /// requiring inverses) exists.
    pub fn is_tractable(self) -> bool {
        !matches!(self, Self::UniqueSatHard)
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ClassicalEasy => write!(f, "classical-poly"),
            Self::QuantumEasy => write!(f, "quantum-poly (classically exponential)"),
            Self::ConditionallyEasy => write!(f, "conditional (inverses required; quantum open)"),
            Self::UniqueSatHard => write!(f, "UNIQUE-SAT-hard"),
        }
    }
}

/// The Fig. 1 classification of an equivalence type.
///
/// # Examples
///
/// ```
/// use revmatch::{classify, Complexity, Equivalence};
///
/// let ni: Equivalence = "N-I".parse()?;
/// assert_eq!(classify(ni), Complexity::QuantumEasy);
/// let nn: Equivalence = "N-N".parse()?;
/// assert_eq!(classify(nn), Complexity::UniqueSatHard);
/// # Ok::<(), revmatch::MatchError>(())
/// ```
pub fn classify(e: Equivalence) -> Complexity {
    use Side::{Np, I, N, P};
    match (e.x, e.y) {
        (I, I) | (I, N) | (I, P) | (I, Np) | (P, I) | (P, N) => Complexity::ClassicalEasy,
        (N, I) | (Np, I) => Complexity::QuantumEasy,
        (N, P) => Complexity::ConditionallyEasy,
        // Everything subsuming N-N or P-P: N-N, P-P, N-NP, NP-N, P-NP,
        // NP-P, NP-NP.
        _ => Complexity::UniqueSatHard,
    }
}

/// An edge of the Fig. 1 Hasse diagram: `from` covers (immediately
/// dominates) `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DominationEdge {
    /// The stronger equivalence.
    pub from: Equivalence,
    /// The immediately weaker equivalence.
    pub to: Equivalence,
}

/// Computes the covering (Hasse) edges of the domination relation — the
/// arrows drawn in Fig. 1.
///
/// `A` covers `B` iff `A ≠ B`, `A` subsumes `B`, and no third `C` sits
/// strictly between them.
pub fn hasse_edges() -> Vec<DominationEdge> {
    let all: Vec<Equivalence> = Equivalence::all().collect();
    let mut edges = Vec::new();
    for &a in &all {
        for &b in &all {
            if a == b || !a.subsumes(b) {
                continue;
            }
            let covered = !all
                .iter()
                .any(|&c| c != a && c != b && a.subsumes(c) && c.subsumes(b));
            if covered {
                edges.push(DominationEdge { from: a, to: b });
            }
        }
    }
    edges
}

/// Renders the lattice as text grouped by level (number of strict
/// dominators), top first — a textual Fig. 1.
pub fn render_lattice() -> String {
    use std::fmt::Write as _;
    let all: Vec<Equivalence> = Equivalence::all().collect();
    let mut levels: Vec<(usize, Equivalence)> = all
        .iter()
        .map(|&e| {
            let dominators = all.iter().filter(|&&d| d != e && d.subsumes(e)).count();
            (dominators, e)
        })
        .collect();
    levels.sort();
    let mut out = String::new();
    let mut current = usize::MAX;
    for (dominators, e) in levels {
        if dominators != current {
            current = dominators;
            let _ = writeln!(out);
        }
        let marker = match classify(e) {
            Complexity::ClassicalEasy => "(easy)",
            Complexity::QuantumEasy => "(quantum easy)",
            Complexity::ConditionallyEasy => "(conditional)",
            Complexity::UniqueSatHard => "[HARD]",
        };
        let _ = writeln!(out, "  {e:<6} {marker}");
    }
    out
}

/// Renders the lattice as a Graphviz `dot` document reproducing Fig. 1's
/// conventions: ovals for easy classes, boxes for UNIQUE-SAT-hard ones,
/// filled ovals for the quantum-easy pair, dashed for the conditional
/// case.
///
/// # Examples
///
/// ```
/// use revmatch::lattice::hasse_dot;
///
/// let dot = hasse_dot();
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("\"NP-NP\" -> \"N-NP\""));
/// ```
pub fn hasse_dot() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph fig1 {\n  rankdir=TB;\n");
    for e in Equivalence::all() {
        let attrs = match classify(e) {
            Complexity::ClassicalEasy => "shape=ellipse",
            Complexity::QuantumEasy => "shape=ellipse, style=filled, fillcolor=lightsteelblue",
            Complexity::ConditionallyEasy => "shape=ellipse, style=dashed",
            Complexity::UniqueSatHard => "shape=box",
        };
        let _ = writeln!(out, "  \"{e}\" [{attrs}];");
    }
    for edge in hasse_edges() {
        let _ = writeln!(out, "  \"{}\" -> \"{}\";", edge.from, edge.to);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: &str) -> Equivalence {
        s.parse().unwrap()
    }

    #[test]
    fn dot_document_is_complete() {
        let dot = hasse_dot();
        for eq in Equivalence::all() {
            assert!(dot.contains(&format!("\"{eq}\"")), "missing node {eq}");
        }
        assert_eq!(dot.matches(" -> ").count(), 32);
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("fillcolor=lightsteelblue"));
    }

    #[test]
    fn classification_matches_fig1() {
        use Complexity::*;
        let expected = [
            ("I-I", ClassicalEasy),
            ("I-N", ClassicalEasy),
            ("I-P", ClassicalEasy),
            ("I-NP", ClassicalEasy),
            ("P-I", ClassicalEasy),
            ("P-N", ClassicalEasy),
            ("N-I", QuantumEasy),
            ("NP-I", QuantumEasy),
            ("N-P", ConditionallyEasy),
            ("N-N", UniqueSatHard),
            ("P-P", UniqueSatHard),
            ("N-NP", UniqueSatHard),
            ("NP-N", UniqueSatHard),
            ("P-NP", UniqueSatHard),
            ("NP-P", UniqueSatHard),
            ("NP-NP", UniqueSatHard),
        ];
        assert_eq!(expected.len(), 16);
        for (name, complexity) in expected {
            assert_eq!(classify(e(name)), complexity, "{name}");
        }
    }

    #[test]
    fn hardness_is_upward_closed() {
        // Everything that subsumes a hard equivalence is hard (paper §5).
        for a in Equivalence::all() {
            for b in Equivalence::all() {
                if a.subsumes(b) && classify(b) == Complexity::UniqueSatHard {
                    assert_eq!(
                        classify(a),
                        Complexity::UniqueSatHard,
                        "{a} subsumes hard {b} but is not hard"
                    );
                }
            }
        }
    }

    #[test]
    fn every_hard_class_subsumes_nn_or_pp() {
        // The paper derives all hardness from N-N and P-P.
        for a in Equivalence::all() {
            if classify(a) == Complexity::UniqueSatHard {
                assert!(
                    a.subsumes(e("N-N")) || a.subsumes(e("P-P")),
                    "{a} is hard but subsumes neither N-N nor P-P"
                );
            }
        }
    }

    #[test]
    fn hasse_edge_count_and_shape() {
        let edges = hasse_edges();
        // The lattice is a product of two diamonds (I < N,P < NP per side):
        // each diamond has 4 covering edges, the product has
        // 4*4 (side-x edges times y-nodes) + 4*4 = 32 edges.
        assert_eq!(edges.len(), 32);
        // Top covers exactly its four lower neighbours.
        let from_top: Vec<&DominationEdge> =
            edges.iter().filter(|d| d.from == e("NP-NP")).collect();
        assert_eq!(from_top.len(), 4);
        // Every edge is a strict domination.
        for d in &edges {
            assert!(d.from.subsumes(d.to) && d.from != d.to);
        }
    }

    #[test]
    fn hasse_has_no_transitive_shortcuts() {
        let edges = hasse_edges();
        for d in &edges {
            for c in Equivalence::all() {
                if c != d.from && c != d.to {
                    assert!(
                        !(d.from.subsumes(c) && c.subsumes(d.to)),
                        "{} -> {} has shortcut through {c}",
                        d.from,
                        d.to
                    );
                }
            }
        }
    }

    #[test]
    fn render_mentions_all_sixteen() {
        let s = render_lattice();
        for eq in Equivalence::all() {
            assert!(s.contains(&eq.to_string()), "missing {eq}");
        }
        assert!(s.contains("[HARD]"));
        assert!(s.contains("(quantum easy)"));
    }

    #[test]
    fn tractable_count() {
        let tractable = Equivalence::all()
            .filter(|&q| classify(q).is_tractable())
            .count();
        // 8 tractable + N-P conditional = 9 ovals in Fig. 1.
        assert_eq!(tractable, 9);
    }
}
