//! Black-box oracles with query counting.
//!
//! The paper measures complexity in **oracle queries** (Problem 1). This
//! module enforces that discipline: matchers receive oracles, not circuits,
//! and every classical or quantum access increments a counter. The
//! experiment harness reads the counters to regenerate Table 1.
//!
//! Probes may be issued one at a time ([`ClassicalOracle::query`]) or in
//! groups ([`ClassicalOracle::query_batch`]). A batch of `k` probes
//! always counts **exactly `k` queries** — batching is an execution
//! optimization (the [`Oracle`] implementation evaluates 64 probes per
//! gate walk via the bit-sliced engine in `revmatch_circuit::batch`),
//! never an accounting discount.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use revmatch_circuit::{Circuit, DenseTable, DENSE_MAX_WIDTH};
use revmatch_quantum::{ProductState, SparseStateVector, StateVector};

use crate::error::MatchError;

/// A classical black box: one output pattern per input query.
pub trait ClassicalOracle {
    /// Number of lines.
    fn width(&self) -> usize;

    /// Queries the box with input `x`, returning the output pattern.
    /// Each call counts as one oracle query.
    fn query(&self, x: u64) -> u64;

    /// Queries the box with every pattern in `xs`, returning the
    /// outputs in order. A batch of `k` probes counts exactly `k`
    /// queries.
    ///
    /// The default implementation falls back to per-probe [`query`]
    /// calls (identical results and identical accounting); concrete
    /// oracles override it with batched evaluation.
    ///
    /// [`query`]: ClassicalOracle::query
    fn query_batch(&self, xs: &[u64]) -> Vec<u64> {
        xs.iter().map(|&x| self.query(x)).collect()
    }
}

/// A quantum black box: executes the circuit on a product-state input and
/// returns the final state (paper §4.5: circuits "can take quantum states
/// as inputs").
pub trait QuantumOracle {
    /// Number of lines.
    fn width(&self) -> usize;

    /// Runs the box on a prepared product state. Each call consumes the
    /// input state and counts as one oracle query.
    ///
    /// # Errors
    ///
    /// Returns an error if the preparation size mismatches the oracle width
    /// or the state is too large to simulate.
    fn query_quantum(&self, input: &ProductState) -> Result<StateVector, MatchError>;

    /// Runs the box on a prepared product state using the sparse
    /// simulation substrate. Identical accounting and semantics to
    /// [`query_quantum`], but the result stores only nonzero
    /// amplitudes, so widths past the dense simulator limit stay
    /// reachable while the state is structurally sparse.
    ///
    /// The default implementation routes through the dense path (and
    /// thus inherits its width limit); [`Oracle`] overrides it with a
    /// genuinely sparse execution.
    ///
    /// # Errors
    ///
    /// Returns an error if the preparation size mismatches the oracle
    /// width or the state outgrows the sparse entry budget.
    ///
    /// [`query_quantum`]: QuantumOracle::query_quantum
    fn query_quantum_sparse(&self, input: &ProductState) -> Result<SparseStateVector, MatchError> {
        Ok(SparseStateVector::from_dense(&self.query_quantum(input)?))
    }
}

/// A counting black box wrapping a reversible circuit.
///
/// # Examples
///
/// ```
/// use revmatch::Oracle;
/// use revmatch::oracle::ClassicalOracle;
/// use revmatch_circuit::{Circuit, Gate};
///
/// let oracle = Oracle::new(Circuit::from_gates(2, [Gate::cnot(0, 1)])?);
/// assert_eq!(oracle.query(0b01), 0b11);
/// assert_eq!(oracle.queries(), 1);
/// # Ok::<(), revmatch_circuit::CircuitError>(())
/// ```
pub struct Oracle {
    circuit: Circuit,
    queries: AtomicU64,
    /// Optional precompiled lookup backend (see [`Oracle::precompiled`]).
    /// Shared so serving workers can memoize tables across repeated
    /// circuits ([`Oracle::with_shared_table`]).
    dense: Option<Arc<DenseTable>>,
}

impl Oracle {
    /// Wraps a circuit as a black box with a fresh query counter.
    ///
    /// Scalar probes walk the gate cascade; batched probes
    /// ([`ClassicalOracle::query_batch`]) use the bit-sliced engine.
    pub fn new(circuit: Circuit) -> Self {
        Self {
            circuit,
            queries: AtomicU64::new(0),
            dense: None,
        }
    }

    /// Wraps a circuit and eagerly compiles a [`DenseTable`] backend
    /// when the width permits (≤ `DENSE_MAX_WIDTH`), falling back to
    /// [`Oracle::new`] otherwise.
    ///
    /// Worth it for high-traffic oracles (the compile sweep costs one
    /// bit-sliced pass over all `2^width` inputs); query accounting is
    /// unchanged — the compile is white-box instance setup, probes
    /// still count one each.
    pub fn precompiled(circuit: Circuit) -> Self {
        let dense = if circuit.width() <= DENSE_MAX_WIDTH {
            DenseTable::compile(&circuit).ok().map(Arc::new)
        } else {
            None
        };
        Self {
            circuit,
            queries: AtomicU64::new(0),
            dense,
        }
    }

    /// Wraps a circuit around an already-compiled (shared) dense table —
    /// the memoization path: a serving worker that has seen this circuit
    /// before hands the cached table in and skips the `2^width` compile
    /// sweep. Query accounting is identical to [`Oracle::precompiled`].
    ///
    /// # Panics
    ///
    /// Panics if the table width disagrees with the circuit width (a
    /// cache-keying bug).
    pub fn with_shared_table(circuit: Circuit, table: Arc<DenseTable>) -> Self {
        assert_eq!(
            table.width(),
            circuit.width(),
            "shared table width must match the circuit"
        );
        Self {
            circuit,
            queries: AtomicU64::new(0),
            dense: Some(table),
        }
    }

    /// Derives the inverse black box (`C⁻¹`), with its own counter.
    ///
    /// The paper's §3 variant problem supplies inverse circuits explicitly;
    /// this helper plays that role (legitimate because reversible circuits
    /// given as white boxes can always be inverted). A precompiled oracle
    /// yields a precompiled inverse.
    pub fn inverse_oracle(&self) -> Oracle {
        if self.dense.is_some() {
            Oracle::precompiled(self.circuit.inverse())
        } else {
            Oracle::new(self.circuit.inverse())
        }
    }

    /// Total queries made so far (classical + quantum).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Resets the query counter.
    pub fn reset_queries(&self) {
        self.queries.store(0, Ordering::Relaxed);
    }

    /// White-box access to the underlying circuit.
    ///
    /// Intended for *verification and instance construction only* — a
    /// matcher that touches this defeats the query-counting model, so
    /// matchers in this crate never call it.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    fn count(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    fn count_many(&self, k: u64) {
        self.queries.fetch_add(k, Ordering::Relaxed);
    }

    /// Charges `k` oracle queries without executing anything — for
    /// in-crate matchers whose backend executes the box outside the
    /// state-vector path (the stabilizer Simon round evaluates the
    /// reduced Clifford circuit classically but still owes its two
    /// queries per round).
    pub(crate) fn charge_queries(&self, k: u64) {
        self.count_many(k);
    }

    /// Evaluates the circuit on one input through the fastest available
    /// backend (dense lookup table when compiled). No query accounting.
    fn eval(&self, x: u64) -> u64 {
        match &self.dense {
            Some(table) => table.apply(x),
            None => self.circuit.apply(x),
        }
    }

    /// Applies this box as a standard quantum **XOR oracle**
    /// `U_C : |x⟩|o⟩ ↦ |x⟩|o ⊕ C(x)⟩` to a (possibly entangled) register,
    /// optionally controlled on a qubit. Counts **one** query.
    ///
    /// This is the conventional quantum black-box formulation (used by
    /// the Simon-style matcher); for white-box circuits it is
    /// constructible from one use of `C` and one of `C⁻¹`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::Quantum`] if the windows do not fit or
    /// overlap.
    pub fn query_quantum_xor(
        &self,
        state: &mut StateVector,
        x_offset: usize,
        out_offset: usize,
        control: Option<(usize, bool)>,
    ) -> Result<(), MatchError> {
        self.count();
        state.apply_xor_oracle(
            |x| self.eval(x),
            x_offset,
            self.circuit.width(),
            out_offset,
            control,
        )?;
        Ok(())
    }

    /// The sparse-substrate twin of [`Oracle::query_quantum_xor`]:
    /// applies `U_C` as a key permutation over the stored nonzeros.
    /// Counts **one** query, identical accounting to the dense path.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::Quantum`] if the windows do not fit or
    /// overlap.
    pub fn query_quantum_xor_sparse(
        &self,
        state: &mut SparseStateVector,
        x_offset: usize,
        out_offset: usize,
        control: Option<(usize, bool)>,
    ) -> Result<(), MatchError> {
        self.count();
        state.apply_xor_oracle(
            |x| self.eval(x),
            x_offset,
            self.circuit.width(),
            out_offset,
            control,
        )?;
        Ok(())
    }
}

impl ClassicalOracle for Oracle {
    fn width(&self) -> usize {
        self.circuit.width()
    }

    fn query(&self, x: u64) -> u64 {
        self.count();
        match &self.dense {
            Some(table) => table.apply(x),
            None => self.circuit.apply(x),
        }
    }

    fn query_batch(&self, xs: &[u64]) -> Vec<u64> {
        self.count_many(xs.len() as u64);
        match &self.dense {
            Some(table) => table.apply_batch(xs),
            None => self.circuit.apply_batch(xs),
        }
    }
}

impl QuantumOracle for Oracle {
    fn width(&self) -> usize {
        self.circuit.width()
    }

    fn query_quantum(&self, input: &ProductState) -> Result<StateVector, MatchError> {
        if input.num_qubits() != self.circuit.width() {
            return Err(MatchError::WidthMismatch {
                left: input.num_qubits(),
                right: self.circuit.width(),
            });
        }
        let sv = input.try_to_state_vector()?;
        self.count();
        Ok(sv.applied_circuit(&self.circuit, 0)?)
    }

    fn query_quantum_sparse(&self, input: &ProductState) -> Result<SparseStateVector, MatchError> {
        if input.num_qubits() != self.circuit.width() {
            return Err(MatchError::WidthMismatch {
                left: input.num_qubits(),
                right: self.circuit.width(),
            });
        }
        self.count();
        let mut sv = SparseStateVector::from_product(input)?;
        sv.apply_window_permutation(|x| self.eval(x), self.circuit.width(), 0)?;
        Ok(sv)
    }
}

impl fmt::Debug for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Oracle(width={}, queries={})",
            self.circuit.width(),
            self.queries()
        )
    }
}

/// An output-masked view of an oracle: `x ↦ oracle(x) ⊕ mask`.
///
/// Used by the P-N matcher (paper §4.7): once the output negation `ν` is
/// known, `C3 = C_ν C2` is realized as a *view* of the `C2` oracle — no
/// extra queries are charged beyond the underlying accesses.
pub struct XorOutputOracle<'a> {
    inner: &'a dyn ClassicalOracle,
    mask: u64,
}

impl<'a> XorOutputOracle<'a> {
    /// Wraps `inner` so every output is XOR-ed with `mask`.
    pub fn new(inner: &'a dyn ClassicalOracle, mask: u64) -> Self {
        Self { inner, mask }
    }
}

impl ClassicalOracle for XorOutputOracle<'_> {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn query(&self, x: u64) -> u64 {
        self.inner.query(x) ^ self.mask
    }

    fn query_batch(&self, xs: &[u64]) -> Vec<u64> {
        let mut out = self.inner.query_batch(xs);
        for y in &mut out {
            *y ^= self.mask;
        }
        out
    }
}

impl fmt::Debug for XorOutputOracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XorOutputOracle(mask={:#x})", self.mask)
    }
}

/// An input-masked view of an oracle: `x ↦ oracle(x ⊕ mask)`.
///
/// The inverse-side companion of [`XorOutputOracle`]: if `C3 = C_ν C2`,
/// then `C3⁻¹(y) = C2⁻¹(y ⊕ ν)` is an input-masked view of `C2⁻¹`.
pub struct XorInputOracle<'a> {
    inner: &'a dyn ClassicalOracle,
    mask: u64,
}

impl<'a> XorInputOracle<'a> {
    /// Wraps `inner` so every input is XOR-ed with `mask` first.
    pub fn new(inner: &'a dyn ClassicalOracle, mask: u64) -> Self {
        Self { inner, mask }
    }
}

impl ClassicalOracle for XorInputOracle<'_> {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn query(&self, x: u64) -> u64 {
        self.inner.query(x ^ self.mask)
    }

    fn query_batch(&self, xs: &[u64]) -> Vec<u64> {
        let masked: Vec<u64> = xs.iter().map(|&x| x ^ self.mask).collect();
        self.inner.query_batch(&masked)
    }
}

impl fmt::Debug for XorInputOracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XorInputOracle(mask={:#x})", self.mask)
    }
}

/// A composed view `x ↦ second(first(x))`, charging one query to each
/// underlying oracle per access.
///
/// Realizes the paper's concatenations like `C = C1 C2⁻¹` used by the
/// inverse-assisted matchers.
pub struct ComposedOracle<'a> {
    first: &'a dyn ClassicalOracle,
    second: &'a dyn ClassicalOracle,
}

impl<'a> ComposedOracle<'a> {
    /// Composes two oracles: `first` is applied first.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::WidthMismatch`] if widths differ.
    pub fn new(
        first: &'a dyn ClassicalOracle,
        second: &'a dyn ClassicalOracle,
    ) -> Result<Self, MatchError> {
        if first.width() != second.width() {
            return Err(MatchError::WidthMismatch {
                left: first.width(),
                right: second.width(),
            });
        }
        Ok(Self { first, second })
    }
}

impl ClassicalOracle for ComposedOracle<'_> {
    fn width(&self) -> usize {
        self.first.width()
    }

    fn query(&self, x: u64) -> u64 {
        self.second.query(self.first.query(x))
    }

    fn query_batch(&self, xs: &[u64]) -> Vec<u64> {
        self.second.query_batch(&self.first.query_batch(xs))
    }
}

impl fmt::Debug for ComposedOracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ComposedOracle(width={})", self.width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmatch_circuit::Gate;
    use revmatch_quantum::Qubit;

    fn not0(width: usize) -> Oracle {
        Oracle::new(Circuit::from_gates(width, [Gate::not(0)]).unwrap())
    }

    #[test]
    fn classical_queries_count() {
        let o = not0(2);
        assert_eq!(o.queries(), 0);
        assert_eq!(o.query(0b00), 0b01);
        assert_eq!(o.query(0b01), 0b00);
        assert_eq!(o.queries(), 2);
        o.reset_queries();
        assert_eq!(o.queries(), 0);
    }

    #[test]
    fn quantum_queries_count_and_apply() {
        let o = not0(1);
        let out = o
            .query_quantum(&ProductState::uniform(1, Qubit::Zero))
            .unwrap();
        assert!((out.probability(1) - 1.0).abs() < 1e-12);
        assert_eq!(o.queries(), 1);
    }

    #[test]
    fn quantum_rejects_wrong_size() {
        let o = not0(2);
        assert!(matches!(
            o.query_quantum(&ProductState::uniform(3, Qubit::Zero)),
            Err(MatchError::WidthMismatch { .. })
        ));
        // Failed call does not count.
        assert_eq!(o.queries(), 0);
    }

    #[test]
    fn inverse_oracle_inverts() {
        let c = Circuit::from_gates(3, [Gate::not(0), Gate::cnot(0, 2)]).unwrap();
        let o = Oracle::new(c);
        let inv = o.inverse_oracle();
        for x in 0..8 {
            assert_eq!(inv.query(o.query(x)), x);
        }
        assert_eq!(o.queries(), 8);
        assert_eq!(inv.queries(), 8);
    }

    #[test]
    fn xor_output_view() {
        let o = not0(2);
        let masked = XorOutputOracle::new(&o, 0b10);
        assert_eq!(masked.query(0b00), 0b11);
        // Charged to the underlying oracle.
        assert_eq!(o.queries(), 1);
    }

    #[test]
    fn composed_view_charges_both() {
        let a = not0(2);
        let b = Oracle::new(Circuit::from_gates(2, [Gate::cnot(0, 1)]).unwrap());
        let c = ComposedOracle::new(&a, &b).unwrap();
        // x=00 -> NOT0 -> 01 -> CNOT -> 11.
        assert_eq!(c.query(0b00), 0b11);
        assert_eq!(a.queries(), 1);
        assert_eq!(b.queries(), 1);
    }

    #[test]
    fn composed_rejects_width_mismatch() {
        let a = not0(2);
        let b = not0(3);
        assert!(ComposedOracle::new(&a, &b).is_err());
    }

    #[test]
    fn xor_oracle_access_counts_one_query() {
        let o = not0(2);
        // Register: x at 0..2, out at 2..4.
        let mut sv = StateVector::basis(0b00_01, 4);
        o.query_quantum_xor(&mut sv, 0, 2, None).unwrap();
        // f(01) = 00; out ^= 00 — state unchanged... use a nontrivial x.
        assert_eq!(o.queries(), 1, "one oracle application = one query");
        let mut sv = StateVector::basis(0b00_10, 4);
        o.query_quantum_xor(&mut sv, 0, 2, None).unwrap();
        // f(10) = 11: out = 11.
        assert!((sv.probability(0b11_10) - 1.0).abs() < 1e-12);
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn xor_oracle_controlled_access() {
        let o = not0(1);
        // Register: x at 0, out at 1, control at 2 (value 0 ⇒ no fire).
        let mut sv = StateVector::basis(0b0_0_0, 3);
        o.query_quantum_xor(&mut sv, 0, 1, Some((2, true))).unwrap();
        assert!((sv.probability(0b0_0_0) - 1.0).abs() < 1e-12);
        // Even a non-firing application counts as a query (the box ran).
        assert_eq!(o.queries(), 1);
    }

    #[test]
    fn batch_counts_exactly_len_on_every_wrapper() {
        let base = Circuit::from_gates(3, [Gate::not(0), Gate::cnot(0, 2)]).unwrap();
        let xs: Vec<u64> = (0..7).collect();

        // Plain oracle.
        let o = Oracle::new(base.clone());
        let batched = o.query_batch(&xs);
        assert_eq!(o.queries(), 7);
        let scalar: Vec<u64> = xs.iter().map(|&x| o.query(x)).collect();
        assert_eq!(batched, scalar);
        assert_eq!(o.queries(), 14);

        // Precompiled oracle: identical answers, identical accounting.
        let p = Oracle::precompiled(base.clone());
        assert_eq!(p.query_batch(&xs), batched);
        assert_eq!(p.queries(), 7);

        // Output-masked view: charged to the inner oracle.
        let o = Oracle::new(base.clone());
        let masked = XorOutputOracle::new(&o, 0b101);
        let got = masked.query_batch(&xs);
        assert_eq!(o.queries(), 7);
        assert_eq!(got, batched.iter().map(|&y| y ^ 0b101).collect::<Vec<_>>());

        // Input-masked view.
        let o = Oracle::new(base.clone());
        let masked = XorInputOracle::new(&o, 0b011);
        let got = masked.query_batch(&xs);
        assert_eq!(o.queries(), 7);
        let expect: Vec<u64> = xs.iter().map(|&x| base.apply(x ^ 0b011)).collect();
        assert_eq!(got, expect);

        // Composition: one query to each side per probe.
        let a = Oracle::new(base.clone());
        let b = Oracle::new(base.inverse());
        let composed = ComposedOracle::new(&a, &b).unwrap();
        let got = composed.query_batch(&xs);
        assert_eq!(a.queries(), 7);
        assert_eq!(b.queries(), 7);
        assert_eq!(got, xs);
    }

    #[test]
    fn default_query_batch_matches_scalar_accounting() {
        // A minimal hand-rolled oracle exercising the trait's default
        // batched path: k probes = k scalar queries.
        struct Probe(std::cell::Cell<u64>);
        impl ClassicalOracle for Probe {
            fn width(&self) -> usize {
                4
            }
            fn query(&self, x: u64) -> u64 {
                self.0.set(self.0.get() + 1);
                x ^ 0b1001
            }
        }
        let p = Probe(std::cell::Cell::new(0));
        let xs: Vec<u64> = (0..9).collect();
        let out = p.query_batch(&xs);
        assert_eq!(p.0.get(), 9);
        assert_eq!(out, xs.iter().map(|&x| x ^ 0b1001).collect::<Vec<_>>());
    }

    #[test]
    fn precompiled_falls_back_beyond_dense_width() {
        let mut c = Circuit::new(DENSE_MAX_WIDTH + 4);
        c.push(Gate::not(2)).unwrap();
        let o = Oracle::precompiled(c);
        assert_eq!(o.query(0), 0b100);
        assert_eq!(o.query_batch(&[0, 0b100]), vec![0b100, 0]);
        assert_eq!(o.queries(), 3);
    }

    #[test]
    fn precompiled_inverse_stays_precompiled_and_inverts() {
        let c = Circuit::from_gates(4, [Gate::toffoli(0, 1, 3), Gate::not(2)]).unwrap();
        let o = Oracle::precompiled(c);
        let inv = o.inverse_oracle();
        let xs: Vec<u64> = (0..16).collect();
        assert_eq!(inv.query_batch(&o.query_batch(&xs)), xs);
    }

    #[test]
    fn sparse_xor_matches_dense_and_counts_one_query() {
        let o = not0(2);
        let mut dense = StateVector::basis(0b00_10, 4);
        let mut sparse = SparseStateVector::from_dense(&dense);
        o.query_quantum_xor(&mut dense, 0, 2, None).unwrap();
        o.query_quantum_xor_sparse(&mut sparse, 0, 2, None).unwrap();
        assert_eq!(o.queries(), 2);
        for x in 0..16u64 {
            assert!(sparse.amplitude(x).approx_eq(dense.amplitude(x), 1e-12));
        }
    }

    #[test]
    fn sparse_quantum_query_scales_past_dense_limit() {
        // Width 24 — query_quantum fails cleanly, the sparse path runs.
        let width = 24;
        let o = Oracle::new(Circuit::from_gates(width, [Gate::cnot(0, 23)]).unwrap());
        let input = ProductState::uniform(width, Qubit::Zero).with_qubit(0, Qubit::One);
        assert!(matches!(
            o.query_quantum(&input),
            Err(MatchError::Quantum(
                revmatch_quantum::QuantumError::TooManyQubits { .. }
            ))
        ));
        let out = o.query_quantum_sparse(&input).unwrap();
        assert!((out.probability(1 | (1 << 23)) - 1.0).abs() < 1e-12);
        // The failed dense call does not count; the sparse query does.
        assert_eq!(o.queries(), 1);
    }

    #[test]
    fn sparse_quantum_query_matches_dense_on_superpositions() {
        let c = Circuit::from_gates(3, [Gate::toffoli(0, 1, 2), Gate::not(1)]).unwrap();
        let o = Oracle::precompiled(c);
        let input = ProductState::from_qubits(vec![Qubit::Plus, Qubit::One, Qubit::Minus]);
        let dense = o.query_quantum(&input).unwrap();
        let sparse = o.query_quantum_sparse(&input).unwrap();
        for x in 0..8u64 {
            assert!(sparse.amplitude(x).approx_eq(dense.amplitude(x), 1e-12));
        }
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn xor_oracle_rejects_bad_windows() {
        let o = not0(2);
        let mut sv = StateVector::basis(0, 3);
        // Out window does not fit.
        assert!(o.query_quantum_xor(&mut sv, 0, 2, None).is_err());
        // Overlapping windows.
        let mut sv = StateVector::basis(0, 4);
        assert!(o.query_quantum_xor(&mut sv, 0, 1, None).is_err());
    }
}
