//! Differential service test for the `SatOptions`-gated solver upgrades
//! (LBD clause management, bounded inprocessing, the XOR/Gauss layer).
//!
//! The optimisations must be *invisible* at the API: the same seeded
//! workload of SAT-equivalence and enumeration jobs, pushed through
//! services configured with 1/2/4 shards and with the upgrades fully on
//! vs fully off, must report bit-identical verdicts, witnesses and
//! witness counts. Shard count and clause-management policy may change
//! *how fast* a verdict arrives, never *which* verdict — or which
//! witness bits — arrive.

use rand::SeedableRng;
use revmatch_circuit::{NegationMask, NpTransform};

use revmatch::{
    job_seed, random_instance, EnumerateJob, Equivalence, JobSpec, MatchError, MatchService,
    MatchWitness, MiterVerdict, SatEquivalenceJob, SatOptions, ServiceConfig, Side, WitnessFamily,
};

/// Canonical, comparable digest of one job's report: the full verdict
/// surface a caller can observe, minus timings and queue accounting.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    witness: Result<MatchWitness, String>,
    miter: Option<MiterVerdict>,
    witness_count: Option<u64>,
}

/// The fixed differential workload: planted-equivalent miters (proven
/// `Equivalent`), deliberately broken witnesses (refuted by
/// counterexample), and family enumerations over negation families,
/// all from one seeded stream so every service run sees byte-identical
/// job specs.
fn workload(seed: u64) -> Vec<JobSpec> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut jobs = Vec::new();
    for width in [4usize, 5, 6] {
        // Planted NP-I pair with its true witness: the miter is UNSAT
        // and the service must prove the witness Equivalent.
        let inst = random_instance(Equivalence::new(Side::Np, Side::I), width, &mut rng);
        jobs.push(JobSpec::SatEquivalence(SatEquivalenceJob {
            c1: inst.c1.clone(),
            c2: inst.c2.clone(),
            witness: Some(inst.witness.clone()),
        }));
        // Same pair under the identity witness: almost surely *not*
        // I-I equivalent, so the SAT check finds a counterexample.
        jobs.push(JobSpec::SatEquivalence(SatEquivalenceJob {
            c1: inst.c1.clone(),
            c2: inst.c2.clone(),
            witness: None,
        }));
        // Family sweeps exercise the incremental-assumption path
        // (solve_under + analyze_final cores) inside one shared solver.
        // BothNegations is 4^n candidates — keep it to the narrow pair.
        let families: &[WitnessFamily] = if width == 4 {
            &[WitnessFamily::InputNegation, WitnessFamily::BothNegations]
        } else {
            &[WitnessFamily::InputNegation]
        };
        for &family in families {
            let planted = random_instance(family.equivalence(), width, &mut rng);
            jobs.push(JobSpec::Enumerate(EnumerateJob::new(
                planted.c1.clone(),
                planted.c2.clone(),
                family,
            )));
        }
    }
    jobs
}

/// Runs the workload on one service configuration and digests reports.
fn run(shards: usize, opts: SatOptions, jobs: &[JobSpec]) -> Vec<Outcome> {
    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(shards)
            .with_sat_opts(opts),
    );
    let outcomes = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let report = service
                .submit_wait_seeded(job.clone(), job_seed(9, i as u64))
                .wait();
            Outcome {
                witness: report.witness.map_err(|e| e.to_string()),
                miter: report.miter,
                witness_count: report.witness_count,
            }
        })
        .collect();
    service.shutdown();
    outcomes
}

/// The solver upgrades and shard fan-out change throughput, never
/// verdicts: every (shards × options) cell reports bit-identical
/// witnesses, miter verdicts and enumeration counts.
#[test]
fn sat_options_and_sharding_are_verdict_invisible() {
    let jobs = workload(0x9A7_0915);
    let baseline = run(1, SatOptions::NONE, &jobs);

    // The workload actually exercises all three verdict shapes.
    assert!(baseline
        .iter()
        .any(|o| o.miter == Some(MiterVerdict::Equivalent)));
    assert!(baseline
        .iter()
        .any(|o| matches!(o.miter, Some(MiterVerdict::Counterexample { .. }))));
    assert!(baseline.iter().any(|o| o.witness_count.is_some()));
    // Planted enumerations must find at least the planted witness.
    for o in baseline.iter().filter(|o| o.witness_count.is_some()) {
        assert!(o.witness_count.unwrap() >= 1, "planted family lost: {o:?}");
    }

    // Every upgrade on at each shard fan-out, plus one mixed cell; the
    // all-off single-shard cell is the baseline itself.
    let cells = [
        (1usize, SatOptions::ALL),
        (2, SatOptions::ALL),
        (4, SatOptions::ALL),
        (
            2,
            SatOptions {
                lbd: true,
                inproc: false,
                xor: true,
            },
        ),
    ];
    for (shards, opts) in cells {
        let got = run(shards, opts, &jobs);
        assert_eq!(
            got, baseline,
            "verdict drift at shards={shards} opts={opts}",
        );
    }
}

/// Proven-equivalent reports carry the original witness back out of the
/// service bit-for-bit, and counterexample refutations stay honest
/// (`PromiseViolated`, never `Inconclusive`) under the full option set.
#[test]
fn proven_witnesses_round_trip_bit_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9A7_B17);
    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(2)
            .with_sat_opts(SatOptions::ALL),
    );
    for i in 0..6u64 {
        let inst = random_instance(Equivalence::new(Side::Np, Side::I), 5, &mut rng);
        let report = service
            .submit_wait_seeded(
                JobSpec::SatEquivalence(SatEquivalenceJob {
                    c1: inst.c1.clone(),
                    c2: inst.c2.clone(),
                    witness: Some(inst.witness.clone()),
                }),
                job_seed(9, 100 + i),
            )
            .wait();
        assert_eq!(report.miter, Some(MiterVerdict::Equivalent));
        let witness = report.witness.expect("proven witness is returned");
        assert!(witness == inst.witness, "witness bits drifted in transit");

        // Corrupt the witness: flip one input-negation bit. The miter
        // must refute it with a concrete counterexample.
        let mut bad = inst.witness.clone();
        bad.input = NpTransform::new(
            NegationMask::new(bad.nu_x().mask() ^ 1, 5).unwrap(),
            bad.pi_x().clone(),
        )
        .unwrap();
        let report = service
            .submit_wait_seeded(
                JobSpec::SatEquivalence(SatEquivalenceJob {
                    c1: inst.c1.clone(),
                    c2: inst.c2.clone(),
                    witness: Some(bad),
                }),
                job_seed(9, 200 + i),
            )
            .wait();
        assert!(matches!(
            report.miter,
            Some(MiterVerdict::Counterexample { .. })
        ));
        assert!(matches!(report.witness, Err(MatchError::PromiseViolated)));
    }
    service.shutdown();
}
