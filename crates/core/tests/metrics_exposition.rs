//! Round-trips the Prometheus text exposition through a small in-test
//! parser: every declared metric family has series, histogram buckets
//! are cumulative and end at `+Inf` with the family count, and counters
//! are monotone across a drain.

use std::collections::BTreeMap;

use rand::SeedableRng;
use revmatch::{
    job_seed, random_instance, EngineJob, Equivalence, JobSpec, MatchService, ServiceConfig, Side,
};

/// One parsed sample: metric name, raw label string (`{}`-less, may be
/// empty), value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: String,
    value: f64,
}

/// A parsed exposition: `# TYPE` declarations plus every sample line.
#[derive(Debug, Default)]
struct Exposition {
    types: BTreeMap<String, String>,
    samples: Vec<Sample>,
}

/// Splits a rendered label set on the commas *between* pairs, never the
/// ones inside quoted values (`opts="lbd,inproc,xor"` is one pair).
/// Backslash-escape aware per the exposition format: `\"` inside a
/// quoted value does not close it, and `\\` does not escape what
/// follows it.
fn split_label_pairs(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut quoted, mut escaped) = (0usize, false, false);
    for (i, b) in labels.bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if quoted => escaped = true,
            b'"' => quoted = !quoted,
            b',' if !quoted => {
                out.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

/// Minimal parser for the subset of the text format `render()` emits:
/// `# HELP`/`# TYPE` comments and `name{labels} value` samples. Panics
/// on anything else — a malformed line is exactly the regression this
/// test exists to catch.
fn parse(text: &str) -> Exposition {
    let mut out = Exposition::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("# TYPE metric name").to_string();
            let kind = it.next().expect("# TYPE metric kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown metric type {kind:?} in {line:?}"
            );
            assert!(
                out.types.insert(name.clone(), kind).is_none(),
                "duplicate # TYPE for {name}"
            );
            continue;
        }
        if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "stray comment {line:?}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
        let value: f64 = value.parse().unwrap_or_else(|e| {
            panic!("unparseable sample value in {line:?}: {e}");
        });
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}').expect("unterminated label set");
                for pair in split_label_pairs(labels) {
                    let (k, v) = pair.split_once('=').expect("label needs key=value");
                    assert!(!k.is_empty() && v.starts_with('"') && v.ends_with('"'));
                }
                (name.to_string(), labels.to_string())
            }
            None => (series.to_string(), String::new()),
        };
        out.samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    out
}

impl Exposition {
    fn of(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Every sample of `family` grouped by the label set minus `le`.
    fn histogram_groups(&self, family: &str) -> BTreeMap<String, Vec<(String, f64)>> {
        let mut groups: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for s in self.of(&format!("{family}_bucket")) {
            let mut le = None;
            let rest: Vec<&str> = split_label_pairs(&s.labels)
                .into_iter()
                .filter(|pair| match pair.strip_prefix("le=") {
                    Some(bound) => {
                        le = Some(bound.trim_matches('"').to_string());
                        false
                    }
                    None => true,
                })
                .collect();
            groups
                .entry(rest.join(","))
                .or_default()
                .push((le.expect("bucket without le"), s.value));
        }
        groups
    }
}

fn value_of(exp: &Exposition, name: &str, labels: &str) -> f64 {
    exp.of(name)
        .iter()
        .find(|s| s.labels == labels)
        .unwrap_or_else(|| panic!("{name}{{{labels}}} missing"))
        .value
}

/// Label values carrying the exposition format's escapable bytes
/// (quote, backslash, comma) survive the quote-aware parser as one
/// pair each — the regression shape for unescaped-label exports.
#[test]
fn parser_handles_escaped_label_values() {
    let text = "# TYPE demo_total counter\n\
                # HELP demo_total demo.\n\
                demo_total{path=\"a\\\"b,c\\\\\",kind=\"x,y\"} 3\n";
    let exp = parse(text);
    assert_eq!(exp.samples.len(), 1);
    let pairs = split_label_pairs(&exp.samples[0].labels);
    assert_eq!(
        pairs,
        vec!["path=\"a\\\"b,c\\\\\"", "kind=\"x,y\""],
        "escaped quote and trailing escaped backslash stay inside one pair"
    );
    assert_eq!(exp.samples[0].value, 3.0);
}

/// Histogram quantile edges through a served workload: an untouched
/// histogram answers `None` for every quantile, and after traffic
/// `q=0.0` reports the observed minimum (not the first bucket's upper
/// bound) while `q=1.0` stays within the observed maximum's bucket.
#[test]
fn histogram_quantile_edges_round_trip() {
    let service = MatchService::start(ServiceConfig::default().with_shards(1));
    let empty = service.metrics().latency();
    assert_eq!(empty.quantile_upper_bound(0.0), None);
    assert_eq!(empty.quantile_upper_bound(1.0), None);
    assert_eq!(empty.quantile_upper_bound(0.5), None);

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE48);
    for i in 0..8u64 {
        let inst = random_instance(Equivalence::new(Side::N, Side::I), 4, &mut rng);
        service
            .submit_wait_seeded(
                JobSpec::Promise(EngineJob::from_instance(&inst, true)),
                job_seed(9, i),
            )
            .wait();
    }
    service.drain();
    let h = service.metrics().latency();
    let q0 = h.quantile_upper_bound(0.0).expect("non-empty histogram");
    let q1 = h.quantile_upper_bound(1.0).expect("non-empty histogram");
    assert_eq!(q0, h.min(), "q=0.0 is the observed minimum");
    assert!(q1 >= h.max(), "q=1.0 bucket bound covers the maximum");
    assert!(q0 <= q1);
    // And the exported histogram agrees with the counters it came from.
    let exp = parse(&service.metrics_text());
    let count = value_of(&exp, "revmatch_job_latency_seconds_count", "");
    assert_eq!(count, h.count() as f64);
    service.shutdown();
}

/// Drives a small promise workload and validates the full exposition.
#[test]
fn exposition_parses_and_is_internally_consistent() {
    let service = MatchService::start(ServiceConfig::default().with_shards(2));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE47);
    for i in 0..12u64 {
        let inst = random_instance(
            Equivalence::new(Side::N, Side::I),
            4 + (i % 2) as usize,
            &mut rng,
        );
        service
            .submit_wait_seeded(
                JobSpec::Promise(EngineJob::from_instance(&inst, true)),
                job_seed(5, i),
            )
            .wait();
    }
    service.drain();
    let first = parse(&service.metrics_text());

    // Every declared family has at least one sample series.
    for (family, kind) in &first.types {
        let series: Vec<&Sample> = match kind.as_str() {
            "histogram" => first
                .samples
                .iter()
                .filter(|s| {
                    s.name == format!("{family}_bucket")
                        || s.name == format!("{family}_sum")
                        || s.name == format!("{family}_count")
                })
                .collect(),
            _ => first.of(family),
        };
        assert!(!series.is_empty(), "# TYPE {family} {kind} has no samples");
    }
    // And no sample belongs to an undeclared family.
    for s in &first.samples {
        let family = s
            .name
            .strip_suffix("_bucket")
            .or_else(|| s.name.strip_suffix("_sum"))
            .or_else(|| s.name.strip_suffix("_count"))
            .filter(|f| first.types.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(&s.name);
        assert!(
            first.types.contains_key(family),
            "sample {} has no # TYPE declaration",
            s.name
        );
    }

    // Histograms: buckets cumulative, ending at le="+Inf" == _count,
    // for every label group of every histogram family.
    let histograms: Vec<&String> = first
        .types
        .iter()
        .filter(|(_, k)| k.as_str() == "histogram")
        .map(|(f, _)| f)
        .collect();
    assert!(!histograms.is_empty());
    for family in histograms {
        for (group, buckets) in first.histogram_groups(family) {
            let mut prev = 0.0;
            for (le, count) in &buckets {
                assert!(
                    *count >= prev,
                    "{family}{{{group}}} bucket le={le} not cumulative"
                );
                prev = *count;
            }
            let (last_le, last_count) = buckets.last().expect("at least one bucket");
            assert_eq!(last_le, "+Inf", "{family}{{{group}}} must end at +Inf");
            let total = value_of(&first, &format!("{family}_count"), &group);
            assert_eq!(
                *last_count, total,
                "{family}{{{group}}} +Inf bucket must equal _count"
            );
        }
    }

    // The workload actually shows up where the new families promise.
    assert_eq!(value_of(&first, "revmatch_jobs_completed_total", ""), 12.0);
    assert!(value_of(&first, "revmatch_queue_wait_seconds_count", "") >= 12.0);
    assert_eq!(
        value_of(&first, "revmatch_exec_seconds_count", "kind=\"promise\""),
        12.0
    );
    // The SAT-core introspection series are part of the exposition
    // contract even on a promise-only workload: the gauges report the
    // last (possibly zero) sample and the info gauge always carries the
    // active option set.
    for series in [
        "revmatch_sat_glue_kept",
        "revmatch_sat_learned_db_size",
        "revmatch_sat_xors_extracted_total",
        "revmatch_sat_inprocess_seconds_total",
    ] {
        assert!(value_of(&first, series, "") >= 0.0, "{series} negative");
    }
    let opts_info = first.of("revmatch_sat_opts_info");
    assert_eq!(opts_info.len(), 1, "one active option set");
    assert_eq!(opts_info[0].value, 1.0);
    assert!(opts_info[0].labels.starts_with("opts=\""));

    let per_shard_jobs: f64 = (0..2)
        .map(|s| {
            value_of(
                &first,
                "revmatch_shard_jobs_total",
                &format!("shard=\"{s}\""),
            )
        })
        .sum();
    assert_eq!(per_shard_jobs, 12.0);

    // Counters are monotone across another drained batch of work.
    for i in 12..20u64 {
        let inst = random_instance(Equivalence::new(Side::N, Side::I), 4, &mut rng);
        service
            .submit_wait_seeded(
                JobSpec::Promise(EngineJob::from_instance(&inst, true)),
                job_seed(5, i),
            )
            .wait();
    }
    service.drain();
    let second = parse(&service.metrics_text());
    assert_eq!(first.types, second.types, "families are stable");
    for s in &first.samples {
        let is_counter = first.types.get(&s.name).map(String::as_str) == Some("counter")
            || s.name.ends_with("_count")
            || s.name.ends_with("_bucket")
            || s.name.ends_with("_sum");
        if !is_counter {
            continue;
        }
        let after = value_of(&second, &s.name, &s.labels);
        assert!(
            after >= s.value,
            "counter {}{{{}}} went backwards: {} -> {after}",
            s.name,
            s.labels,
            s.value
        );
    }
    service.shutdown();
}
