//! End-to-end tests for the tracing subsystem through the public
//! service API: span taxonomy coverage for every job kind, sampling
//! stride behaviour, the off-mode zero-footprint guarantee, and the
//! always-on per-job timing breakdown.

use std::collections::{BTreeSet, HashMap};

use rand::SeedableRng;
use revmatch::{
    job_seed, random_instance, EngineJob, EnumerateJob, Equivalence, IdentifyJob, JobKind, JobSpec,
    MatchService, QuantumAlgorithm, QuantumPathJob, SatEquivalenceJob, ServiceConfig, Side, Stage,
    TraceConfig, WitnessFamily,
};

/// One job of every kind over small planted instances, deterministic.
fn one_of_each() -> Vec<JobSpec> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7ACE);
    let e = Equivalence::new(Side::N, Side::I);
    let width = 4;
    let promise = random_instance(e, width, &mut rng);
    let identify = random_instance(e, width, &mut rng);
    let quantum = random_instance(e, width, &mut rng);
    let sat = random_instance(e, width, &mut rng);
    let enumerate = random_instance(e, width, &mut rng);
    vec![
        JobSpec::Promise(EngineJob::from_instance(&promise, true)),
        JobSpec::Identify(IdentifyJob::new(identify.c1, identify.c2).without_brute_force()),
        JobSpec::QuantumPath(QuantumPathJob {
            equivalence: e,
            c1: quantum.c1,
            c2: quantum.c2,
            algorithm: QuantumAlgorithm::Simon,
        }),
        JobSpec::SatEquivalence(SatEquivalenceJob {
            c1: sat.c1,
            c2: sat.c2,
            witness: Some(sat.witness),
        }),
        JobSpec::Enumerate(EnumerateJob::new(
            enumerate.c1,
            enumerate.c2,
            WitnessFamily::InputNegation,
        )),
    ]
}

fn traced_service(trace: TraceConfig) -> MatchService {
    MatchService::start(
        ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(32)
            .with_trace(trace),
    )
}

/// With tracing fully on, every job kind emits the worker-side span
/// taxonomy and the drain is consistent: per-job stages nest inside the
/// job's submit→report window.
#[test]
fn every_kind_emits_the_span_taxonomy() {
    let service = traced_service(TraceConfig::all());
    for (i, job) in one_of_each().into_iter().enumerate() {
        service
            .submit_wait_seeded(job, job_seed(1, i as u64))
            .wait();
    }
    // A ticket resolves before its worker finishes recording spans;
    // drain() is the consistent cut.
    service.drain();
    let spans = service.trace_spans();

    // Every kind is covered, and every traced job carries the
    // unconditional stages.
    let mut stages_by_job: HashMap<u64, BTreeSet<Stage>> = HashMap::new();
    let mut kinds = BTreeSet::new();
    for s in &spans {
        stages_by_job.entry(s.job).or_default().insert(s.stage);
        kinds.insert(s.kind);
    }
    assert_eq!(
        kinds.into_iter().collect::<Vec<_>>(),
        JobKind::ALL.to_vec(),
        "all five kinds must appear in the trace"
    );
    assert_eq!(stages_by_job.len(), 5, "one traced job per kind");
    for (job, stages) in &stages_by_job {
        for required in [
            Stage::Submit,
            Stage::QueueWait,
            Stage::Dequeue,
            Stage::Execute,
            Stage::Report,
        ] {
            assert!(
                stages.contains(&required),
                "job {job} is missing its {required} span; has {stages:?}"
            );
        }
    }
    // The cache-backed oracle path shows up for at least one job (cold
    // dense compile ⇒ a cache_probe span wrapping a table_compile span).
    let all_stages: BTreeSet<Stage> = spans.iter().map(|s| s.stage).collect();
    assert!(all_stages.contains(&Stage::CacheProbe));
    assert!(all_stages.contains(&Stage::TableCompile));

    // Execute spans carry a backend/kernel detail; drained spans are
    // start-ordered and stages sit inside the job's overall window.
    for s in &spans {
        if s.stage == Stage::Execute {
            assert!(
                s.detail.name().is_some(),
                "execute span for {} must attribute a backend/kernel",
                s.kind
            );
        }
    }
    assert!(
        spans.windows(2).all(|w| w[0].start_us <= w[1].start_us),
        "drained spans are sorted by start"
    );

    let json = service.trace_json().expect("tracing on ⇒ json available");
    assert!(json.starts_with('{') && json.contains("\"traceEvents\""));
    service.shutdown();
}

/// `sampled(3)` keeps exactly the jobs whose service-assigned id is a
/// multiple of the stride (ids start at 0), and a second drain starts
/// empty.
#[test]
fn sampling_stride_thins_the_span_stream() {
    let service = traced_service(TraceConfig::sampled(3));
    let jobs = one_of_each();
    for i in 0..9usize {
        let job = jobs[i % jobs.len()].clone();
        service
            .submit_wait_seeded(job, job_seed(2, i as u64))
            .wait();
    }
    service.drain();
    let spans = service.trace_spans();
    let traced_ids: BTreeSet<u64> = spans.iter().map(|s| s.job).collect();
    assert_eq!(
        traced_ids.into_iter().collect::<Vec<_>>(),
        vec![0, 3, 6],
        "ids 0..9 under stride 3 trace exactly 0, 3, 6"
    );
    assert!(service.trace_spans().is_empty(), "drain consumes the rings");
    service.shutdown();
}

/// Off is the default and records nothing — no tracer, no spans, no
/// JSON — while the per-job timing breakdown stays on.
#[test]
fn off_mode_records_no_spans_but_still_times_jobs() {
    let service = traced_service(TraceConfig::off());
    assert!(service.tracer().is_none(), "off ⇒ no tracer allocated");
    let report = service
        .submit_wait_seeded(one_of_each().remove(4), job_seed(3, 0))
        .wait();
    assert!(service.trace_spans().is_empty());
    assert!(service.trace_json().is_none());
    // Enumerate sweeps 2^4 candidate masks — far above µs resolution.
    assert!(report.timing.exec_us > 0, "timing is unconditional");
    service.shutdown();
}

/// The timing breakdown observes real queueing and cache behaviour:
/// paused workers inflate `queue_wait_us`, and the second identical
/// promise job hits the dense-table cache.
#[test]
fn timing_breakdown_sees_queue_wait_and_cache_hits() {
    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(1)
            .with_queue_capacity(8)
            .with_trace(TraceConfig::off()),
    );
    let job = one_of_each().remove(0);

    service.pause();
    let ticket = service.submit_wait_seeded(job.clone(), job_seed(4, 0));
    std::thread::sleep(std::time::Duration::from_millis(20));
    service.resume();
    let cold = ticket.wait();
    assert!(
        cold.timing.queue_wait_us >= 10_000,
        "a 20ms pause must show up as queue wait, got {}µs",
        cold.timing.queue_wait_us
    );
    assert!(!cold.timing.cache_hit, "first probe of this pair is cold");

    let warm = service.submit_wait_seeded(job, job_seed(4, 1)).wait();
    assert!(
        warm.timing.cache_hit,
        "identical circuits re-probe warm tables"
    );
    service.shutdown();
}
