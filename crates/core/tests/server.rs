//! Protocol-level integration tests for `revmatch-server`: spawn the
//! binary on an ephemeral port, drive every job kind over TCP from
//! concurrent connections with explicit seeds, and check the reports
//! are bit-identical to the in-process `submit_wait_seeded` path.
//! Because job outcomes depend only on `(job, seed)`, the wire hop must
//! be invisible in every result field (timing excepted — wall clock is
//! not part of the contract).

use std::io::{BufRead, BufReader, BufWriter};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, Command, Stdio};

use rand::SeedableRng;
use revmatch::{
    job_seed, random_instance, read_server_frame, write_client_frame, ClientFrame, EngineJob,
    EnumerateJob, Equivalence, IdentifyJob, JobReport, JobSpec, MatchService, QuantumAlgorithm,
    QuantumPathJob, SatEquivalenceJob, ServerFrame, ServiceConfig, Side, SubmitOutcome,
    WitnessFamily,
};

/// Kills the server on test panic so no orphan keeps the port.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `revmatch-server` on an ephemeral port and returns the guard
/// plus the address scraped from its "listening on ADDR" line.
fn spawn_server(extra_args: &[&str]) -> (ServerGuard, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_revmatch-server"))
        .args(["--addr", "127.0.0.1:0", "--shards", "2"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn revmatch-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (ServerGuard(child), addr)
}

/// One seeded job of every kind (all solvable planted instances).
fn seeded_jobs() -> Vec<(JobSpec, u64)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EEDE);
    let ni = random_instance(Equivalence::new(Side::N, Side::I), 5, &mut rng);
    let ip = random_instance(Equivalence::new(Side::I, Side::P), 5, &mut rng);
    let pn = random_instance(Equivalence::new(Side::P, Side::N), 4, &mut rng);
    vec![
        (
            JobSpec::Promise(EngineJob::from_instance(&ip, true).with_sat_verification()),
            job_seed(0xA, 0),
        ),
        (
            JobSpec::Identify(IdentifyJob::new(pn.c1.clone(), pn.c2.clone())),
            job_seed(0xA, 1),
        ),
        (
            JobSpec::QuantumPath(QuantumPathJob {
                equivalence: ni.equivalence,
                c1: ni.c1.clone(),
                c2: ni.c2.clone(),
                algorithm: QuantumAlgorithm::Simon,
            }),
            job_seed(0xA, 2),
        ),
        (
            JobSpec::SatEquivalence(SatEquivalenceJob {
                c1: ip.c1.clone(),
                c2: ip.c2.clone(),
                witness: Some(ip.witness.clone()),
            }),
            job_seed(0xA, 3),
        ),
        (
            JobSpec::Enumerate(EnumerateJob::new(
                ni.c1.clone(),
                ni.c2.clone(),
                WitnessFamily::InputNegation,
            )),
            job_seed(0xA, 4),
        ),
    ]
}

/// Everything but timing must match exactly across the wire hop.
fn assert_reports_equal(wire: &JobReport, local: &JobReport, label: &str) {
    assert_eq!(wire.kind, local.kind, "{label}: kind");
    assert_eq!(wire.witness, local.witness, "{label}: witness");
    assert_eq!(wire.queries, local.queries, "{label}: queries");
    assert_eq!(
        wire.charged_queries, local.charged_queries,
        "{label}: charged queries"
    );
    assert_eq!(wire.rounds, local.rounds, "{label}: rounds");
    assert_eq!(wire.identified, local.identified, "{label}: identified");
    assert_eq!(
        wire.witness_count, local.witness_count,
        "{label}: witness count"
    );
    assert_eq!(wire.miter, local.miter, "{label}: miter verdict");
}

/// Submits `jobs` (tagged with client ids) over one connection and
/// returns the reports indexed by client id.
fn submit_over_wire(addr: &str, jobs: &[(JobSpec, u64)]) -> Vec<JobReport> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut out = BufWriter::new(stream.try_clone().expect("clone"));
    for (i, (job, seed)) in jobs.iter().enumerate() {
        write_client_frame(
            &mut out,
            &ClientFrame::Submit {
                client_id: i as u64,
                seed: Some(*seed),
                job: job.clone(),
            },
        )
        .expect("write submit");
    }
    use std::io::Write as _;
    out.flush().expect("flush");
    drop(out);
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut input = BufReader::new(stream);
    let mut reports: Vec<Option<JobReport>> = (0..jobs.len()).map(|_| None).collect();
    while let Some(frame) = read_server_frame(&mut input).expect("read frame") {
        match frame {
            ServerFrame::Report { client_id, report } => {
                let slot = &mut reports[client_id as usize];
                assert!(slot.is_none(), "duplicate report for {client_id}");
                *slot = Some(report);
            }
            ServerFrame::MetricsText(_) => panic!("unrequested metrics frame"),
        }
    }
    reports
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("no report for job {i}")))
        .collect()
}

/// All five kinds over several concurrent connections: every report is
/// bit-identical to the in-process seeded submit of the same job.
#[test]
fn wire_reports_match_in_process_bit_for_bit() {
    let jobs = seeded_jobs();
    // In-process baseline on the same topology. Explicit seeds make the
    // shard count and placement irrelevant to the outcome.
    let service = MatchService::start(ServiceConfig::default().with_shards(2));
    let local: Vec<JobReport> = jobs
        .iter()
        .map(|(job, seed)| service.submit_wait_seeded(job.clone(), *seed).wait())
        .collect();
    service.shutdown();

    let (_guard, addr) = spawn_server(&[]);
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let jobs = jobs.clone();
            std::thread::spawn(move || submit_over_wire(&addr, &jobs))
        })
        .collect();
    for handle in handles {
        let wire = handle.join().expect("connection thread");
        for (i, (w, l)) in wire.iter().zip(&local).enumerate() {
            assert_reports_equal(w, l, &format!("job {i}"));
        }
    }
}

/// The HTTP sniff on the same port: `GET /metrics` answers one
/// Prometheus text scrape with the serving counters in it.
#[test]
fn http_metrics_scrape_on_same_port() {
    let jobs = seeded_jobs();
    let (_guard, addr) = spawn_server(&[]);
    let _ = submit_over_wire(&addr, &jobs);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    use std::io::{Read as _, Write as _};
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("revmatch_jobs_completed_total"));
    assert!(
        response.contains(&format!("revmatch_jobs_completed_total {}", jobs.len())),
        "scrape reflects the completed wire jobs"
    );
}

/// SIGTERM with submits still in flight: the server completes every
/// accepted job, flushes the reports, closes cleanly, and exits 0.
#[test]
fn sigterm_drains_accepted_jobs_before_exit() {
    let jobs = seeded_jobs();
    let (mut guard, addr) = spawn_server(&[]);

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut out = BufWriter::new(stream.try_clone().expect("clone"));
    for (i, (job, seed)) in jobs.iter().enumerate() {
        write_client_frame(
            &mut out,
            &ClientFrame::Submit {
                client_id: i as u64,
                seed: Some(*seed),
                job: job.clone(),
            },
        )
        .expect("write submit");
    }
    use std::io::{Read as _, Write as _};
    out.flush().expect("flush");

    // Wait until the server has *accepted* every submit (scraped over
    // HTTP on the same port) before signaling: the drain contract
    // covers accepted jobs, while frames still in the socket when the
    // signal lands are legitimately discarded — without this wait the
    // test would race the reader thread.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let mut http = TcpStream::connect(&addr).expect("connect for scrape");
        http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("write scrape");
        let mut text = String::new();
        http.read_to_string(&mut text).expect("read scrape");
        let submitted = text
            .lines()
            .find_map(|l| l.strip_prefix("revmatch_jobs_submitted_total "))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        if submitted >= jobs.len() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server accepted only {submitted}/{} jobs",
            jobs.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // SIGTERM while the connection is still open for writing: the
    // server must shut our read half down, finish the accepted jobs,
    // and stream all their reports before closing.
    let status = Command::new("kill")
        .args(["-TERM", &guard.0.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());

    let mut input = BufReader::new(stream);
    let mut received = 0;
    while let Some(frame) = read_server_frame(&mut input).expect("read frame") {
        match frame {
            ServerFrame::Report { .. } => received += 1,
            ServerFrame::MetricsText(_) => panic!("unrequested metrics frame"),
        }
    }
    assert_eq!(received, jobs.len(), "every accepted job reported");
    let exit = guard.0.wait().expect("server exit");
    assert!(exit.success(), "graceful drain exits 0, got {exit:?}");
}

/// The in-process `submit` outcome enum stays exhaustive in tests that
/// track it (compile-time reminder that `Shed` exists on this path).
#[test]
fn shed_outcome_is_reachable_only_with_admission() {
    let service = MatchService::start(ServiceConfig::default().with_shards(1));
    let (job, seed) = seeded_jobs().remove(0);
    match service.submit_seeded(job, seed) {
        SubmitOutcome::Enqueued(t) => drop(t.wait()),
        SubmitOutcome::QueueFull(_) => panic!("empty intake rejected a job"),
        SubmitOutcome::Shed(_) => panic!("admission off can never shed"),
    }
    service.drain();
    service.shutdown();
}
