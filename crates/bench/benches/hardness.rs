//! Benches for the §5 reductions: encoding-circuit construction, DPLL
//! solving, witness transport and verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch::{check_witness, NnReduction, PpReduction, VerifyMode};
use revmatch_sat::{planted_unique, Solver};

fn bench_nn_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_reduction");
    for &n in &[4usize, 8, 12] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let planted = planted_unique(n, 3.min(n), &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| NnReduction::new(planted.cnf.clone()).unwrap());
        });
        let red = NnReduction::new(planted.cnf.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("solve_via_sat", n), &n, |b, _| {
            b.iter(|| red.solve_via_sat().unwrap());
        });
        let witness = red.solve_via_sat().unwrap();
        group.bench_with_input(BenchmarkId::new("verify_sampled", n), &n, |b, _| {
            b.iter(|| {
                check_witness(
                    &red.c1,
                    &red.c2,
                    &witness,
                    VerifyMode::Sampled(256),
                    &mut rng,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_pp_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("pp_reduction");
    for &n in &[3usize, 5] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let planted = planted_unique(n, 2.min(n), &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| PpReduction::new(planted.cnf.clone()).unwrap());
        });
    }
    group.finish();
}

fn bench_dpll(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpll");
    for &n in &[8usize, 12, 16] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let planted = planted_unique(n, 3, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("solve_unique", n), &n, |b, _| {
            b.iter(|| Solver::new(&planted.cnf).solve());
        });
        group.bench_with_input(BenchmarkId::new("count_to_2", n), &n, |b, _| {
            b.iter(|| Solver::new(&planted.cnf).count_models(2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nn_reduction, bench_pp_reduction, bench_dpll);
criterion_main!(benches);
