//! Benchmarks for the quantum simulation backends: the Simon matcher on
//! dense, sparse and stabilizer substrates across a backend × width
//! matrix, plus Simon-only service throughput at widths past the dense
//! state-vector ceiling.
//!
//! Beyond the criterion groups, `main` prints the latency matrix and
//! **asserts** the acceptance floors in-bench: all backends recover
//! bit-identical witnesses vs dense at fixed seeds, the stabilizer
//! completes width-20 Simon jobs, and a Simon-only mix at widths 10–12
//! runs ≥ 5× the jobs/s of a forced-dense service (which must serve
//! those widths through its swap-test capacity fallback — dense Simon
//! needs 2n+1 ≤ 20 qubits). The active backend policy is logged
//! (`quantum backend: …`) so CI can grep both auto and forced runs.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch::{
    job_seed, match_n_i_simon_with, random_wide_instance, Equivalence, JobSpec, JobTicket,
    MatchService, Oracle, PromiseInstance, QuantumAlgorithm, QuantumPathJob, ServiceConfig, Side,
};
use revmatch_quantum::{active_quantum_backend_name, QuantumBackend, MAX_QUBITS};

/// Planted N-I pair as a bounded MCT cascade: oracle evaluation cost is
/// gate-count-linear, so the same generator serves every width.
fn wide_ni_instance(width: usize, seed: u64) -> PromiseInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_wide_instance(
        Equivalence::new(Side::N, Side::I),
        width,
        4 * width,
        &mut rng,
    )
}

/// Widest Simon problem each backend can register (the matcher's own
/// capacity check; see `check_simon_capacity`).
fn simon_cap(backend: QuantumBackend) -> usize {
    match backend {
        QuantumBackend::Dense => (MAX_QUBITS - 1) / 2,
        QuantumBackend::Sparse => revmatch_quantum::SPARSE_MAX_ENTRIES.ilog2() as usize - 1,
        QuantumBackend::Stabilizer => 31,
    }
}

fn run_simon(inst: &PromiseInstance, backend: QuantumBackend, seed: u64) -> revmatch::MatchReport {
    let c1 = Oracle::new(inst.c1.clone());
    let c2 = Oracle::new(inst.c2.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match_n_i_simon_with(&c1, &c2, backend, &mut rng)
        .unwrap_or_else(|e| panic!("simon w={} on {backend}: {e}", inst.c1.width()))
}

/// The backend × width matrix under criterion: each in-capacity backend
/// solves the same planted instance end to end.
fn bench_simon_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("simon_backends");
    group.sample_size(10);
    for &width in &[6usize, 9, 12, 16, 20] {
        let inst = wide_ni_instance(width, 0xB0B + width as u64);
        for backend in QuantumBackend::ALL {
            if width > simon_cap(backend) {
                continue;
            }
            // Dense at width 9 builds 2^19-amplitude rounds; keep the
            // criterion matrix to its cheaper widths and let the
            // summary time it once.
            if backend == QuantumBackend::Dense && width > 6 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(backend.name(), width), &width, |b, &w| {
                b.iter(|| run_simon(black_box(&inst), backend, 0xC0FFEE + w as u64));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simon_matrix);

/// Best-of-N wall-clock for one Simon match, adaptive: one warm-up
/// decides how many repeats fit a sensible budget on slow substrates.
fn time_simon(inst: &PromiseInstance, backend: QuantumBackend) -> f64 {
    let warm = Instant::now();
    black_box(run_simon(inst, backend, 7));
    let once = warm.elapsed().as_secs_f64();
    let reps = ((0.3 / once.max(1e-9)) as usize).clamp(1, 25);
    let mut best = once;
    for r in 0..reps {
        let start = Instant::now();
        black_box(run_simon(inst, backend, 7 + r as u64));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Acceptance: identical fixed seeds ⇒ every backend recovers the
/// planted negation mask bit for bit, and agrees with dense exactly.
fn witness_identity_summary() {
    for width in [3usize, 5, 7, 9] {
        let inst = wide_ni_instance(width, 0x1D + width as u64);
        let dense = run_simon(&inst, QuantumBackend::Dense, 0x5EED ^ width as u64);
        assert_eq!(
            dense.witness.nu_x(),
            inst.witness.nu_x(),
            "acceptance: dense misses the planted mask at width {width}"
        );
        for backend in [QuantumBackend::Sparse, QuantumBackend::Stabilizer] {
            let got = run_simon(&inst, backend, 0x5EED ^ width as u64);
            assert_eq!(
                got.witness, dense.witness,
                "acceptance: {backend} witness diverges from dense at width {width}"
            );
        }
        println!(
            "witness identity w={width:2}: dense == sparse == stabilizer == planted \
             (mask {:#x})",
            dense.witness.nu_x().mask()
        );
    }
}

/// The README matrix: median-of-best Simon match latency per backend at
/// widths through 24. Also asserts the stabilizer completes width 20.
fn simon_matrix_summary() {
    println!("simon match latency (one job, direct matcher):");
    println!("width | dense        | sparse       | stabilizer");
    for width in [6usize, 9, 12, 16, 20, 24] {
        let inst = wide_ni_instance(width, 0xB0B + width as u64);
        let mut cells = Vec::new();
        for backend in QuantumBackend::ALL {
            if width > simon_cap(backend) {
                cells.push("      —     ".to_string());
                continue;
            }
            let secs = time_simon(&inst, backend);
            cells.push(format!("{:9.3} ms", secs * 1e3));
        }
        println!("w={width:2}  | {} | {} | {}", cells[0], cells[1], cells[2]);
        if width == 20 {
            // time_simon panics on failure, so reaching here means the
            // stabilizer solved width 20 — the dense wall is at 9.
            println!("acceptance: stabilizer completes w=20 Simon (dense caps at w=9)");
        }
    }
}

/// Acceptance floor: a Simon-only mix at widths 10–12 through the
/// service on the stabilizer must clear 5× the jobs/s of a forced-dense
/// service over the same instances. Dense cannot register Simon past
/// width 9, so its jobs take the swap-test fallback — exactly the path
/// loadgen plans for it — and that dense swap-test wall is the baseline
/// this PR exists to break.
fn service_floor_summary() {
    for width in [10usize, 12] {
        let insts: Vec<PromiseInstance> = (0..8)
            .map(|i| wide_ni_instance(width, 0xF100 + (width * 31 + i) as u64))
            .collect();
        let throughput = |backend: QuantumBackend, algorithm: QuantumAlgorithm| -> f64 {
            let service = MatchService::start(
                ServiceConfig::default()
                    .with_shards(1)
                    .with_quantum_backend(backend),
            );
            let mut best = 0.0f64;
            for _pass in 0..2 {
                let start = Instant::now();
                let tickets: Vec<JobTicket> = insts
                    .iter()
                    .enumerate()
                    .map(|(i, inst)| {
                        let job = JobSpec::QuantumPath(QuantumPathJob {
                            equivalence: inst.equivalence,
                            c1: inst.c1.clone(),
                            c2: inst.c2.clone(),
                            algorithm,
                        });
                        service.submit_wait_seeded(job, job_seed(9, i as u64))
                    })
                    .collect();
                let reports: Vec<_> = tickets.into_iter().map(JobTicket::wait).collect();
                best = best.max(insts.len() as f64 / start.elapsed().as_secs_f64());
                for (inst, report) in insts.iter().zip(&reports) {
                    let witness = report
                        .witness
                        .as_ref()
                        .unwrap_or_else(|e| panic!("{backend} w={width}: {e}"));
                    assert_eq!(witness.nu_x(), inst.witness.nu_x(), "{backend} w={width}");
                }
            }
            service.shutdown();
            best
        };
        let stabilizer = throughput(QuantumBackend::Stabilizer, QuantumAlgorithm::Simon);
        let dense = throughput(QuantumBackend::Dense, QuantumAlgorithm::SwapTest);
        let ratio = stabilizer / dense;
        println!(
            "simon-only mix w={width}: stabilizer {stabilizer:8.0} jobs/s | \
             dense fallback {dense:8.0} jobs/s | {ratio:6.1}x"
        );
        assert!(
            ratio >= 5.0,
            "acceptance: stabilizer Simon at w={width} must clear 5x the \
             dense-path jobs/s, got {ratio:.1}x"
        );
    }
}

fn main() {
    // The CI smokes grep this line in both the auto and the forced
    // (REVMATCH_QBACKEND) runs.
    println!("quantum backend: {}", active_quantum_backend_name());
    benches();
    witness_identity_summary();
    simon_matrix_summary();
    service_floor_summary();
}
