//! The Theorem 1 separation as a wall-clock bench: classical collision
//! search vs quantum Algorithm 1 for N-I matching, per width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch::{
    match_n_i_collision, match_n_i_quantum, match_n_i_simon, Equivalence, MatcherConfig, Oracle,
    Side,
};

fn bench_classical_collision(c: &mut Criterion) {
    let mut group = c.benchmark_group("ni_classical_collision");
    group.sample_size(20);
    for &n in &[6usize, 8, 10, 12] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let inst = revmatch::random_instance(Equivalence::new(Side::N, Side::I), n, &mut rng);
        let c1 = Oracle::new(inst.c1);
        let c2 = Oracle::new(inst.c2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| match_n_i_collision(&c1, &c2, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_quantum_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("ni_quantum_algorithm1");
    group.sample_size(20);
    let config = MatcherConfig::with_epsilon(1e-3);
    for &n in &[6usize, 8, 10] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let inst = revmatch::random_instance(Equivalence::new(Side::N, Side::I), n, &mut rng);
        let c1 = Oracle::new(inst.c1);
        let c2 = Oracle::new(inst.c2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| match_n_i_quantum(&c1, &c2, &config, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_quantum_simon(c: &mut Criterion) {
    let mut group = c.benchmark_group("ni_quantum_simon");
    group.sample_size(20);
    for &n in &[4usize, 6, 8] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let inst = revmatch::random_instance(Equivalence::new(Side::N, Side::I), n, &mut rng);
        let c1 = Oracle::new(inst.c1);
        let c2 = Oracle::new(inst.c2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| match_n_i_simon(&c1, &c2, &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_classical_collision,
    bench_quantum_algorithm1,
    bench_quantum_simon
);
criterion_main!(benches);
