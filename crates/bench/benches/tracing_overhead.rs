//! Overhead budget for the tracing subsystem: span recording must be
//! free when off and near-free when sampled.
//!
//! The harness drives the same mixed promise/identify/sat/enumerate
//! workload through three service configurations — tracing off, traced
//! every job, and traced 1-in-8 (the sampled production setting) — and
//! **asserts** the acceptance floors in-bench:
//!
//! * off is structurally zero-cost: no `Tracer` is allocated, the
//!   worker hot path degenerates to one `Option` check, and two
//!   independent off runs (the A/A pair) agree within the measured
//!   noise band;
//! * sampled-on throughput stays within `max(5%, A/A noise)` of off —
//!   the budget the ISSUE sets for `--trace-sample` on a mixed load.
//!
//! Full (1-in-1) tracing is timed and printed for reference but not
//! asserted: its cost is workload-dependent and the production
//! recommendation at high rates is sampling.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use rand::SeedableRng;
use revmatch::{
    job_seed, random_instance, EngineJob, EnumerateJob, Equivalence, IdentifyJob, JobSpec,
    JobTicket, MatchService, ServiceConfig, Side, TraceConfig, WitnessFamily,
};

/// Deterministic mixed pool: the four classical job kinds over widths
/// 5–6 and a spread of equivalence classes. Quantum jobs are left out —
/// their round-count variance would dominate the noise band this bench
/// exists to measure.
fn mixed_pool(jobs: usize) -> Vec<JobSpec> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7AACE);
    let classes = [
        Equivalence::new(Side::Np, Side::I),
        Equivalence::new(Side::I, Side::P),
        Equivalence::new(Side::P, Side::N),
    ];
    let mut pool = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let width = 5 + i % 2;
        let e = classes[i % classes.len()];
        pool.push(match i % 4 {
            0 => {
                let inst = random_instance(e, width, &mut rng);
                JobSpec::Promise(EngineJob::from_instance(&inst, true))
            }
            1 => {
                let inst = random_instance(e, width, &mut rng);
                JobSpec::Identify(IdentifyJob::new(inst.c1, inst.c2).without_brute_force())
            }
            2 => {
                let inst = random_instance(e, width, &mut rng);
                JobSpec::SatEquivalence(revmatch::SatEquivalenceJob {
                    c1: inst.c1,
                    c2: inst.c2,
                    witness: Some(inst.witness),
                })
            }
            _ => {
                let ni = Equivalence::new(Side::N, Side::I);
                let inst = random_instance(ni, width, &mut rng);
                JobSpec::Enumerate(EnumerateJob::new(
                    inst.c1,
                    inst.c2,
                    WitnessFamily::InputNegation,
                ))
            }
        });
    }
    pool
}

/// Best-of-`passes` jobs/s for the pool through a service pinned to
/// `trace`. Each pass submits the whole pool and waits for every
/// report; the first pass doubles as cache warm-up so the timed best
/// reflects steady state, not table compiles.
fn throughput(trace: TraceConfig, pool: &[JobSpec], passes: usize) -> (f64, u64) {
    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(pool.len().max(16))
            .with_trace(trace),
    );
    assert_eq!(
        service.tracer().is_some(),
        trace.enabled(),
        "a disabled trace config must not allocate a tracer"
    );
    let mut best = 0.0f64;
    for pass in 0..passes {
        let start = Instant::now();
        let tickets: Vec<JobTicket> = pool
            .iter()
            .enumerate()
            .map(|(i, job)| service.submit_wait_seeded(job.clone(), job_seed(3, i as u64)))
            .collect();
        for ticket in tickets {
            let report = ticket.wait();
            assert!(report.witness.is_ok(), "planted pool job failed");
        }
        if pass > 0 {
            best = best.max(pool.len() as f64 / start.elapsed().as_secs_f64());
        }
    }
    let spans = service.trace_spans().len() as u64;
    service.shutdown();
    (best, spans)
}

/// Criterion view of the same comparison at a smaller pool, for trend
/// tracking across commits.
fn bench_tracing_modes(c: &mut Criterion) {
    let pool = mixed_pool(32);
    let mut group = c.benchmark_group("tracing_overhead");
    group.sample_size(10);
    for (name, trace) in [
        ("off", TraceConfig::off()),
        ("sample8", TraceConfig::sampled(8)),
        ("all", TraceConfig::all()),
    ] {
        group.bench_function(name, |b| {
            let service = MatchService::start(
                ServiceConfig::default()
                    .with_shards(2)
                    .with_queue_capacity(pool.len())
                    .with_trace(trace),
            );
            b.iter(|| {
                let tickets: Vec<JobTicket> = pool
                    .iter()
                    .enumerate()
                    .map(|(i, job)| service.submit_wait_seeded(job.clone(), job_seed(3, i as u64)))
                    .collect();
                for ticket in tickets {
                    black_box(ticket.wait());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracing_modes);

/// The asserted budget: A/A off runs bound the noise, sampled-on must
/// land inside `max(5%, noise)` of the better off run.
///
/// Each config is measured over `ROUNDS` interleaved service
/// instantiations (off-A, off-B, sampled, full, repeat) and scored by
/// its best round. Interleaving matters: machine-level drift between
/// back-to-back service runs measures at ±15% on a loaded host —
/// dwarfing any real tracing cost — but it moves slowly, so bests drawn
/// from the same alternating epochs cancel it.
fn overhead_summary() {
    const ROUNDS: usize = 5;
    let pool = mixed_pool(192);
    let configs = [
        TraceConfig::off(),
        TraceConfig::off(),
        TraceConfig::sampled(8),
        TraceConfig::all(),
    ];
    let mut best = [0.0f64; 4];
    let mut spans = [0u64; 4];
    for _round in 0..ROUNDS {
        for (i, &trace) in configs.iter().enumerate() {
            let (jobs_s, n) = throughput(trace, &pool, 2);
            best[i] = best[i].max(jobs_s);
            spans[i] += n;
        }
    }
    let [off_a, off_b, sampled, full] = best;
    let [off_a_spans, off_b_spans, sampled_spans, full_spans] = spans;

    assert_eq!(
        off_a_spans + off_b_spans,
        0,
        "acceptance: tracing off must record zero spans"
    );
    assert!(
        sampled_spans > 0 && full_spans > sampled_spans,
        "sampling must thin the span stream, not mirror or empty it \
         (sampled {sampled_spans}, full {full_spans})"
    );

    let noise = (off_a - off_b).abs() / off_a.max(off_b);
    let off_best = off_a.max(off_b);
    let overhead = (off_best - sampled) / off_best;
    let budget = noise.max(0.05);
    println!(
        "tracing overhead (mixed pool, {} jobs, best of {ROUNDS} interleaved rounds):",
        pool.len(),
    );
    println!(
        "  off A/A     : {off_a:8.0} / {off_b:8.0} jobs/s (noise {:.1}%)",
        noise * 100.0
    );
    println!(
        "  sampled 1/8 : {sampled:8.0} jobs/s ({:+.1}% vs off, budget {:.1}%) [{sampled_spans} spans]",
        -overhead * 100.0,
        budget * 100.0,
    );
    println!(
        "  full 1/1    : {full:8.0} jobs/s ({:+.1}% vs off, unasserted) [{full_spans} spans]",
        -(off_best - full) / off_best * 100.0,
    );
    assert!(
        overhead <= budget,
        "acceptance: sampled tracing costs {:.1}%, over the max(5%, A/A noise {:.1}%) budget",
        overhead * 100.0,
        noise * 100.0,
    );
    println!("acceptance: sampled tracing within the max(5%, A/A noise) budget");
}

fn main() {
    benches();
    overhead_summary();
}
