//! Benches for the swap-test substrate (Fig. 3): full-circuit simulation
//! vs the analytic fast path, across qubit counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch_quantum::{swap_test, ProductState, Qubit, SwapTestMethod};

fn bench_swap_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap_test");
    for &n in &[2usize, 4, 6, 8] {
        let s1 = ProductState::uniform(n, Qubit::Plus)
            .with_qubit(0, Qubit::Zero)
            .to_state_vector();
        let s2 = ProductState::uniform(n, Qubit::Plus).to_state_vector();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        group.bench_with_input(BenchmarkId::new("full_circuit", n), &n, |b, _| {
            b.iter(|| swap_test(SwapTestMethod::FullCircuit, &s1, &s2, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("analytic", n), &n, |b, _| {
            b.iter(|| swap_test(SwapTestMethod::Analytic, &s1, &s2, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_circuit_on_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum_oracle_query");
    for &n in &[4usize, 8, 12] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let circuit = revmatch_circuit::random_circuit(
            &revmatch_circuit::RandomCircuitSpec::for_width(n),
            &mut rng,
        );
        let probe = ProductState::uniform(n, Qubit::Plus).with_qubit(0, Qubit::Zero);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                probe
                    .to_state_vector()
                    .applied_circuit(&circuit, 0)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_swap_test, bench_circuit_on_state);
criterion_main!(benches);
