//! Benches for the substrates: circuit simulation, synthesis, truth-table
//! operations and `.real` I/O.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch_circuit::{
    random_circuit, read_real, synthesize, write_real, RandomCircuitSpec, SynthesisStrategy,
    TruthTable,
};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_apply");
    for &(w, g) in &[(16usize, 64usize), (32, 128), (64, 512)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        let spec = RandomCircuitSpec {
            width: w,
            gate_count: g,
            max_controls: 3,
            allow_negative_controls: true,
        };
        let circuit = random_circuit(&spec, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}w_{g}g")),
            &w,
            |b, _| {
                let mut x = 0u64;
                b.iter(|| {
                    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15) & revmatch_circuit::width_mask(w);
                    circuit.apply(x)
                });
            },
        );
    }
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(20);
    for &w in &[4usize, 6, 8] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let tt = TruthTable::random(w, &mut rng);
        group.bench_with_input(BenchmarkId::new("basic", w), &w, |b, _| {
            b.iter(|| synthesize(&tt, SynthesisStrategy::Basic).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bidirectional", w), &w, |b, _| {
            b.iter(|| synthesize(&tt, SynthesisStrategy::Bidirectional).unwrap());
        });
    }
    group.finish();
}

fn bench_real_io(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(32);
    let circuit = random_circuit(
        &RandomCircuitSpec {
            width: 16,
            gate_count: 256,
            max_controls: 4,
            allow_negative_controls: true,
        },
        &mut rng,
    );
    let text = write_real(&circuit);
    c.bench_function("real_write_256g", |b| b.iter(|| write_real(&circuit)));
    c.bench_function("real_parse_256g", |b| b.iter(|| read_real(&text).unwrap()));
}

criterion_group!(benches, bench_simulation, bench_synthesis, bench_real_io);
criterion_main!(benches);
