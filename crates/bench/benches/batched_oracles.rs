//! Benchmarks for the batched oracle engine: per-probe scalar `query`
//! vs bit-sliced `query_batch` vs precompiled dense tables, plus
//! end-to-end `MatchEngine` throughput.
//!
//! Beyond the criterion groups, `main` prints a speedup summary for the
//! headline comparison (width-12 random circuits, 4096 probes): the
//! bit-sliced and dense-table paths are expected to beat per-probe
//! scalar evaluation by well over an order of magnitude.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use revmatch::{
    job_seed, random_wide_instance, ClassicalOracle, EngineJob, Equivalence, JobReport, JobTicket,
    MatchEngine, MatchService, MatcherConfig, Oracle, ServiceConfig, Side,
};
use revmatch_circuit::{
    random_circuit, width_mask, BatchEvaluator, EvalBackend, RandomCircuitSpec,
};

const PROBES: usize = 4096;

fn probe_set(width: usize, count: usize, seed: u64) -> Vec<u64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| rng.gen::<u64>() & width_mask(width))
        .collect()
}

fn bench_eval_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_eval");
    for &width in &[12usize, 20] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
        let xs = probe_set(width, PROBES, 2);

        let scalar = Oracle::new(circuit.clone());
        group.bench_with_input(BenchmarkId::new("scalar_query", width), &width, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &x in &xs {
                    acc ^= scalar.query(black_box(x));
                }
                acc
            });
        });

        let sliced = Oracle::new(circuit.clone());
        group.bench_with_input(
            BenchmarkId::new("batch_bitsliced", width),
            &width,
            |b, _| {
                b.iter(|| sliced.query_batch(black_box(&xs)));
            },
        );

        let dense = Oracle::precompiled(circuit.clone());
        group.bench_with_input(BenchmarkId::new("batch_dense", width), &width, |b, _| {
            b.iter(|| dense.query_batch(black_box(&xs)));
        });
    }
    group.finish();
}

/// A reproducible batch of NP-I jobs over random MCT cascades (3n
/// gates), wide enough to exercise the dense-table oracle backend.
fn engine_jobs(width: usize, count: usize) -> Vec<EngineJob> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    (0..count)
        .map(|_| {
            let inst = random_wide_instance(
                Equivalence::new(Side::Np, Side::I),
                width,
                3 * width,
                &mut rng,
            );
            EngineJob::from_instance(&inst, true)
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_engine");
    group.sample_size(10);
    let jobs = engine_jobs(16, 64);
    for &workers in &[1usize, 4] {
        let engine = MatchEngine::new(MatcherConfig::default()).with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("npi_w16_x64", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let outcome = engine.solve_batch(black_box(&jobs), 7);
                    assert_eq!(outcome.solved(), jobs.len());
                    outcome.total_queries
                });
            },
        );
        // Same jobs and seeds through a persistent sharded service: no
        // per-batch thread spawn/join, so this is the serving-layer
        // fast path `solve_batch` wraps.
        let service = MatchService::start(
            ServiceConfig::default()
                .with_shards(workers)
                .with_queue_capacity(jobs.len())
                .with_matcher(MatcherConfig::default()),
        );
        group.bench_with_input(
            BenchmarkId::new("service_npi_w16_x64", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let tickets: Vec<JobTicket> = jobs
                        .iter()
                        .enumerate()
                        .map(|(i, job)| {
                            service
                                .submit_wait_seeded(black_box(job.clone()), job_seed(7, i as u64))
                        })
                        .collect();
                    let solved = tickets
                        .into_iter()
                        .map(JobTicket::wait)
                        .filter(|r| r.witness.is_ok())
                        .count();
                    assert_eq!(solved, jobs.len());
                    solved
                });
            },
        );
        service.shutdown();
    }
    group.finish();
}

/// Times `f` over `reps` runs and returns the best ns per probe.
fn best_ns_per_probe(reps: usize, probes: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        let ns = start.elapsed().as_nanos() as f64 / probes as f64;
        best = best.min(ns);
    }
    best
}

fn speedup_summary() {
    for width in [12usize, 20] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
        let xs = probe_set(width, PROBES, 2);

        // Oracle-level comparison: per-probe `query` vs one `query_batch`
        // per round, with identical query accounting on all three paths.
        let scalar_oracle = Oracle::new(circuit.clone());
        let scalar = best_ns_per_probe(30, PROBES, || {
            let mut acc = 0u64;
            for &x in &xs {
                acc ^= scalar_oracle.query(x);
            }
            acc
        });
        let sliced_oracle = Oracle::new(circuit.clone());
        let sliced = best_ns_per_probe(30, PROBES, || {
            sliced_oracle.query_batch(&xs).iter().fold(0, |a, &y| a ^ y)
        });
        let dense_oracle = Oracle::precompiled(circuit.clone());
        let dense = best_ns_per_probe(30, PROBES, || {
            dense_oracle.query_batch(&xs).iter().fold(0, |a, &y| a ^ y)
        });

        // Raw evaluator numbers (no oracle wrapper/counter) for reference.
        let sliced_eval = BatchEvaluator::with_backend(&circuit, EvalBackend::BitSliced).unwrap();
        let raw_sliced = best_ns_per_probe(30, PROBES, || {
            sliced_eval.apply_batch(&xs).iter().fold(0, |a, &y| a ^ y)
        });
        let auto = BatchEvaluator::compile(&circuit);

        println!(
            "\n== speedup summary (width {width}, {PROBES} probes, {} gates, auto backend {:?}) ==",
            circuit.len(),
            auto.backend(),
        );
        println!("scalar oracle query      : {scalar:8.2} ns/probe   1.00x");
        println!(
            "bit-sliced  query_batch  : {sliced:8.2} ns/probe   {:5.2}x  (raw kernel {raw_sliced:.2} ns)",
            scalar / sliced
        );
        println!(
            "dense-table query_batch  : {dense:8.2} ns/probe   {:5.2}x",
            scalar / dense
        );
    }

    // Two job shapes: heavy jobs (width 16, dense-table compile
    // dominated) where the two paths should tie, and light jobs (width
    // 6) where `solve_batch`'s per-call service spawn/join is a real
    // fraction of the work and the persistent service pulls ahead.
    for (label, jobs) in [
        ("npi w16 ×64", engine_jobs(16, 64)),
        ("npi w6 ×256", engine_jobs(6, 256)),
    ] {
        println!();
        serving_comparison(label, &jobs);
    }
}

fn serving_comparison(label: &str, jobs: &[EngineJob]) {
    for workers in [1usize, 4] {
        // Thread-per-batch compatibility wrapper: spawns and joins a
        // batch-sized service every call.
        let engine = MatchEngine::new(MatcherConfig::default()).with_workers(workers);
        let mut batch_best = 0.0f64;
        let mut outcome = engine.solve_batch(jobs, 7);
        for _ in 0..5 {
            let o = engine.solve_batch(jobs, 7);
            batch_best = batch_best.max(o.instances_per_sec());
            outcome = o;
        }

        // Persistent sharded service, same jobs and per-job seeds.
        let service = MatchService::start(
            ServiceConfig::default()
                .with_shards(workers)
                .with_queue_capacity(jobs.len())
                .with_matcher(MatcherConfig::default()),
        );
        let mut service_best = 0.0f64;
        let mut reports: Vec<JobReport> = Vec::new();
        for _ in 0..5 {
            let start = Instant::now();
            let tickets: Vec<JobTicket> = jobs
                .iter()
                .enumerate()
                .map(|(i, job)| service.submit_wait_seeded(job.clone(), job_seed(7, i as u64)))
                .collect();
            reports = tickets.into_iter().map(JobTicket::wait).collect();
            let ips = jobs.len() as f64 / start.elapsed().as_secs_f64();
            service_best = service_best.max(ips);
        }
        // Equal seeds ⇒ the two paths must agree bit for bit.
        assert_eq!(reports.len(), outcome.reports.len());
        for (a, b) in reports.iter().zip(&outcome.reports) {
            assert_eq!(a.queries, b.queries, "service vs batch query count");
            assert_eq!(
                a.witness.as_ref().ok(),
                b.witness.as_ref().ok(),
                "service vs batch witness"
            );
        }
        service.shutdown();

        println!(
            "engine {label}, {workers} worker{}: solve_batch {batch_best:7.0} inst/s | \
             persistent service {service_best:7.0} inst/s ({:4.2}x) | {} queries",
            if workers == 1 { "" } else { "s" },
            service_best / batch_best,
            outcome.total_queries,
        );
    }
}

criterion_group!(benches, bench_eval_backends, bench_engine_throughput);

fn main() {
    benches();
    speedup_summary();
}
