//! Benchmarks for the batched oracle engine: per-probe scalar `query`
//! vs the bit-sliced kernels (`sliced64`, `wide256` with AVX2 dispatch)
//! vs precompiled dense tables, plus `DenseTable::compile` old-vs-new
//! and end-to-end `MatchEngine` throughput.
//!
//! Beyond the criterion groups, `main` prints speedup summaries and
//! **asserts** the kernel-layer acceptance floors in-bench: every
//! kernel's outputs bit-identical to per-probe scalar evaluation
//! always, and — when the AVX2 path is what dispatch resolves to —
//! `wide256` ≥ 2× over `sliced64` on width-12 probes and the new
//! compile ≥ 3× over the old transpose-sweep at width 16. The selected
//! kernel is logged (`selected kernel: …`) so CI can grep both the
//! forced-`sliced64` and auto-dispatch runs.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use revmatch::{
    job_seed, random_wide_instance, ClassicalOracle, EngineJob, Equivalence, JobReport, JobTicket,
    MatchEngine, MatchService, MatcherConfig, Oracle, ServiceConfig, Side,
};
use revmatch_circuit::{
    active_kernel_name, random_circuit, width_mask, BatchEvaluator, DenseTable, EvalBackend,
    Kernel, RandomCircuitSpec,
};

const PROBES: usize = 4096;

fn probe_set(width: usize, count: usize, seed: u64) -> Vec<u64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| rng.gen::<u64>() & width_mask(width))
        .collect()
}

fn bench_eval_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_eval");
    for &width in &[12usize, 20] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
        let xs = probe_set(width, PROBES, 2);

        let scalar = Oracle::new(circuit.clone());
        group.bench_with_input(BenchmarkId::new("scalar_query", width), &width, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &x in &xs {
                    acc ^= scalar.query(black_box(x));
                }
                acc
            });
        });

        let sliced = Oracle::new(circuit.clone());
        group.bench_with_input(
            BenchmarkId::new("batch_bitsliced", width),
            &width,
            |b, _| {
                b.iter(|| sliced.query_batch(black_box(&xs)));
            },
        );

        let dense = Oracle::precompiled(circuit.clone());
        group.bench_with_input(BenchmarkId::new("batch_dense", width), &width, |b, _| {
            b.iter(|| dense.query_batch(black_box(&xs)));
        });
    }
    group.finish();
}

/// The kernel × width matrix: every bit-sliced kernel at widths
/// straddling the packing cutoff (≤ 32 packs) and the dense-auto rule.
fn bench_kernel_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_kernels");
    for &width in &[8usize, 12, 16, 20, 33] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
        let xs = probe_set(width, PROBES, 2);
        for kernel in [Kernel::Sliced64, Kernel::Wide256Portable, Kernel::Wide256] {
            let eval = BatchEvaluator::with_kernel(&circuit, kernel);
            group.bench_with_input(BenchmarkId::new(kernel.name(), width), &width, |b, _| {
                b.iter(|| eval.apply_batch(black_box(&xs)));
            });
        }
    }
    group.finish();
}

/// `DenseTable::compile` old vs new: the PR-1 transpose-sweep path
/// (`Kernel::Sliced64`) against the constant-init wide sweep the auto
/// kernel picks.
fn bench_table_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_compile");
    group.sample_size(10);
    for &width in &[12usize, 16, 20] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
        group.bench_with_input(BenchmarkId::new("sweep_old", width), &width, |b, _| {
            b.iter(|| DenseTable::compile_with(black_box(&circuit), Kernel::Sliced64).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("wide_new", width), &width, |b, _| {
            b.iter(|| DenseTable::compile(black_box(&circuit)).unwrap());
        });
    }
    group.finish();
}

/// A reproducible batch of NP-I jobs over random MCT cascades (3n
/// gates), wide enough to exercise the dense-table oracle backend.
fn engine_jobs(width: usize, count: usize) -> Vec<EngineJob> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    (0..count)
        .map(|_| {
            let inst = random_wide_instance(
                Equivalence::new(Side::Np, Side::I),
                width,
                3 * width,
                &mut rng,
            );
            EngineJob::from_instance(&inst, true)
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_engine");
    group.sample_size(10);
    let jobs = engine_jobs(16, 64);
    for &workers in &[1usize, 4] {
        let engine = MatchEngine::new(MatcherConfig::default()).with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("npi_w16_x64", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let outcome = engine.solve_batch(black_box(&jobs), 7);
                    assert_eq!(outcome.solved(), jobs.len());
                    outcome.total_queries
                });
            },
        );
        // Same jobs and seeds through a persistent sharded service: no
        // per-batch thread spawn/join, so this is the serving-layer
        // fast path `solve_batch` wraps.
        let service = MatchService::start(
            ServiceConfig::default()
                .with_shards(workers)
                .with_queue_capacity(jobs.len())
                .with_matcher(MatcherConfig::default()),
        );
        group.bench_with_input(
            BenchmarkId::new("service_npi_w16_x64", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let tickets: Vec<JobTicket> = jobs
                        .iter()
                        .enumerate()
                        .map(|(i, job)| {
                            service
                                .submit_wait_seeded(black_box(job.clone()), job_seed(7, i as u64))
                        })
                        .collect();
                    let solved = tickets
                        .into_iter()
                        .map(JobTicket::wait)
                        .filter(|r| r.witness.is_ok())
                        .count();
                    assert_eq!(solved, jobs.len());
                    solved
                });
            },
        );
        service.shutdown();
    }
    group.finish();
}

/// Times `f` over `reps` runs and returns the best ns per probe.
fn best_ns_per_probe(reps: usize, probes: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        let ns = start.elapsed().as_nanos() as f64 / probes as f64;
        best = best.min(ns);
    }
    best
}

/// Per-kernel ns/probe at one width, with bit-identity asserted against
/// per-probe scalar `apply` on every kernel.
fn kernel_row(width: usize) -> (f64, f64, f64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
    let xs = probe_set(width, PROBES, 2);
    let expect: Vec<u64> = xs.iter().map(|&x| circuit.apply(x)).collect();
    let mut ns = [0.0f64; 4];
    for (slot, kernel) in ns.iter_mut().zip(Kernel::ALL) {
        let eval = BatchEvaluator::with_kernel(&circuit, kernel);
        assert_eq!(
            eval.apply_batch(&xs),
            expect,
            "kernel {kernel} diverged from scalar at width {width}"
        );
        *slot = best_ns_per_probe(20, PROBES, || {
            eval.apply_batch(&xs).iter().fold(0, |a, &y| a ^ y)
        });
    }
    let [scalar, sliced64, portable, wide] = ns;
    (scalar, sliced64, portable, wide)
}

/// The kernel matrix summary plus the width-12 acceptance floor:
/// `wide256` ≥ 2× over `sliced64`, asserted when dispatch resolves to
/// the AVX2 path (the portable fallback carries no such guarantee).
fn kernel_summary() {
    println!("\n== kernel matrix ({PROBES} probes, 3·width gates, ns/probe) ==");
    println!("width |   scalar | sliced64 | wide256-portable |  wide256 | wide/sliced");
    for width in [8usize, 12, 16, 20, 33] {
        let (scalar, sliced64, portable, wide) = kernel_row(width);
        let ratio = sliced64 / wide;
        println!(
            "{width:5} | {scalar:8.2} | {sliced64:8.2} | {portable:16.2} | {wide:8.2} | {ratio:10.2}x"
        );
        if width == 12 && Kernel::Wide256.dispatch_name() == "wide256-avx2" {
            assert!(
                ratio >= 2.0,
                "acceptance: wide256 must be ≥ 2x sliced64 at width 12, got {ratio:.2}x"
            );
        }
    }
}

/// `DenseTable::compile` old-vs-new summary plus the width-16
/// acceptance floor (≥ 3× when the AVX2 path is active), with the
/// tables asserted bit-identical to the scalar compile.
fn compile_summary() {
    println!("\n== dense-table compile, old transpose-sweep vs new wide sweep ==");
    for width in [12usize, 16, 20] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
        let reference = DenseTable::compile_with(&circuit, Kernel::Scalar).unwrap();
        assert_eq!(
            DenseTable::compile(&circuit).unwrap(),
            reference,
            "new compile diverged from scalar at width {width}"
        );
        let reps = 12;
        let mut old_best = f64::INFINITY;
        let mut new_best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            black_box(DenseTable::compile_with(black_box(&circuit), Kernel::Sliced64).unwrap());
            old_best = old_best.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(DenseTable::compile(black_box(&circuit)).unwrap());
            new_best = new_best.min(start.elapsed().as_secs_f64());
        }
        let ratio = old_best / new_best;
        println!(
            "width {width:2}: old {:9.1} µs | new {:9.1} µs | {ratio:5.2}x",
            old_best * 1e6,
            new_best * 1e6
        );
        if width == 16 && active_kernel_name() == "wide256-avx2" {
            assert!(
                ratio >= 3.0,
                "acceptance: new compile must be ≥ 3x the old sweep at width 16, got {ratio:.2}x"
            );
        }
    }
}

fn speedup_summary() {
    for width in [12usize, 20] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let circuit = random_circuit(&RandomCircuitSpec::for_width(width), &mut rng);
        let xs = probe_set(width, PROBES, 2);

        // Oracle-level comparison: per-probe `query` vs one `query_batch`
        // per round, with identical query accounting on all three paths.
        let scalar_oracle = Oracle::new(circuit.clone());
        let scalar = best_ns_per_probe(30, PROBES, || {
            let mut acc = 0u64;
            for &x in &xs {
                acc ^= scalar_oracle.query(x);
            }
            acc
        });
        let sliced_oracle = Oracle::new(circuit.clone());
        let sliced = best_ns_per_probe(30, PROBES, || {
            sliced_oracle.query_batch(&xs).iter().fold(0, |a, &y| a ^ y)
        });
        let dense_oracle = Oracle::precompiled(circuit.clone());
        let dense = best_ns_per_probe(30, PROBES, || {
            dense_oracle.query_batch(&xs).iter().fold(0, |a, &y| a ^ y)
        });

        // Raw evaluator numbers (no oracle wrapper/counter) for reference.
        let sliced_eval = BatchEvaluator::with_backend(&circuit, EvalBackend::BitSliced).unwrap();
        let raw_sliced = best_ns_per_probe(30, PROBES, || {
            sliced_eval.apply_batch(&xs).iter().fold(0, |a, &y| a ^ y)
        });
        let auto = BatchEvaluator::compile(&circuit);

        println!(
            "\n== speedup summary (width {width}, {PROBES} probes, {} gates, auto backend {:?}) ==",
            circuit.len(),
            auto.backend(),
        );
        println!("scalar oracle query      : {scalar:8.2} ns/probe   1.00x");
        println!(
            "batched     query_batch  : {sliced:8.2} ns/probe   {:5.2}x  (raw kernel {raw_sliced:.2} ns)",
            scalar / sliced
        );
        println!(
            "dense-table query_batch  : {dense:8.2} ns/probe   {:5.2}x",
            scalar / dense
        );
    }

    // Two job shapes: heavy jobs (width 16, dense-table compile
    // dominated) where the two paths should tie, and light jobs (width
    // 6) where `solve_batch`'s per-call service spawn/join is a real
    // fraction of the work and the persistent service pulls ahead.
    for (label, jobs) in [
        ("npi w16 ×64", engine_jobs(16, 64)),
        ("npi w6 ×256", engine_jobs(6, 256)),
    ] {
        println!();
        serving_comparison(label, &jobs);
    }
}

fn serving_comparison(label: &str, jobs: &[EngineJob]) {
    for workers in [1usize, 4] {
        // Thread-per-batch compatibility wrapper: spawns and joins a
        // batch-sized service every call.
        let engine = MatchEngine::new(MatcherConfig::default()).with_workers(workers);
        let mut batch_best = 0.0f64;
        let mut outcome = engine.solve_batch(jobs, 7);
        for _ in 0..5 {
            let o = engine.solve_batch(jobs, 7);
            batch_best = batch_best.max(o.instances_per_sec());
            outcome = o;
        }

        // Persistent sharded service, same jobs and per-job seeds.
        let service = MatchService::start(
            ServiceConfig::default()
                .with_shards(workers)
                .with_queue_capacity(jobs.len())
                .with_matcher(MatcherConfig::default()),
        );
        let mut service_best = 0.0f64;
        let mut reports: Vec<JobReport> = Vec::new();
        for _ in 0..5 {
            let start = Instant::now();
            let tickets: Vec<JobTicket> = jobs
                .iter()
                .enumerate()
                .map(|(i, job)| service.submit_wait_seeded(job.clone(), job_seed(7, i as u64)))
                .collect();
            reports = tickets.into_iter().map(JobTicket::wait).collect();
            let ips = jobs.len() as f64 / start.elapsed().as_secs_f64();
            service_best = service_best.max(ips);
        }
        // Equal seeds ⇒ the two paths must agree bit for bit.
        assert_eq!(reports.len(), outcome.reports.len());
        for (a, b) in reports.iter().zip(&outcome.reports) {
            assert_eq!(a.queries, b.queries, "service vs batch query count");
            assert_eq!(
                a.witness.as_ref().ok(),
                b.witness.as_ref().ok(),
                "service vs batch witness"
            );
        }
        service.shutdown();

        println!(
            "engine {label}, {workers} worker{}: solve_batch {batch_best:7.0} inst/s | \
             persistent service {service_best:7.0} inst/s ({:4.2}x) | {} queries",
            if workers == 1 { "" } else { "s" },
            service_best / batch_best,
            outcome.total_queries,
        );
    }
}

criterion_group!(
    benches,
    bench_eval_backends,
    bench_kernel_matrix,
    bench_table_compile,
    bench_engine_throughput
);

fn main() {
    // The CI smokes grep this line in both the auto-dispatch and the
    // forced-kernel (REVMATCH_KERNEL) runs.
    println!("selected kernel: {}", active_kernel_name());
    benches();
    kernel_summary();
    compile_summary();
    speedup_summary();
}
