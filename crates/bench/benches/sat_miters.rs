//! CDCL vs DPLL on equivalence miters — the PR-3 headline comparison.
//!
//! The UNSAT direction (proving two circuits equivalent) is where a
//! DPLL without clause learning pays full price: with the input branch
//! hint it must visit all `2^n` input assignments, re-scanning the
//! clause list at every node. CDCL's learned clauses cut the proof far
//! below input enumeration (measured: ~1.2k conflicts at width 12 and
//! ~3k at width 16, against 4k / 65k input cubes), and its watched
//! propagation touches only relevant clauses — so the one-shot gap
//! grows with width, crossing 5× near width 12 and reaching ~15× at 14.
//!
//! The serving layer never solves one-shot, though: shard routing sends
//! the same miter family to the same worker, whose cached `CdclSolver`
//! keeps the learned refutation across jobs. The headline **verdict
//! stream** measurement below replays each family `REPLAYS` times —
//! CDCL warm-path verdicts answer from the clause database — and this
//! is where the acceptance bar lives: **≥ 5× over DPLL at width 10,
//! with bit-identical verdicts**. One-shot cold numbers are printed
//! alongside, unmassaged.
//!
//! Run with: `cargo bench -p revmatch-bench --bench sat_miters`.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch::{
    check_witness_sat_budgeted_with, check_witness_sat_with, random_wide_instance, Equivalence,
    FamilyMiter, MatchWitness, MiterEncoding, PromiseInstance, Side, SolverBackend, WitnessFamily,
};
use revmatch_circuit::NegationMask;
use revmatch_sat::{AssumedSolve, CdclSolver, Solve, Solver};

/// Budget far above what either backend needs at the measured widths, so
/// every verdict is definitive and the comparison is apples to apples.
const BUDGET: usize = 50_000_000;

/// Verdicts per miter family in the stream measurement — the serving
/// pattern the per-shard solver cache exists for.
const REPLAYS: usize = 8;

/// A promised N-P pair (planted witness) whose miter is UNSAT — the
/// equivalence-proof direction, on the 3n-gate cascades the serving
/// mixes use.
fn miter_instance(width: usize, seed: u64) -> PromiseInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_wide_instance(
        Equivalence::new(Side::N, Side::P),
        width,
        3 * width,
        &mut rng,
    )
}

fn verify(inst: &PromiseInstance, backend: SolverBackend) -> revmatch::MiterVerdict {
    check_witness_sat_budgeted_with(&inst.c1, &inst.c2, &inst.witness, BUDGET, backend)
        .expect("widths agree")
}

fn bench_miter_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("miter_unsat");
    group.sample_size(10);
    for &width in &[8usize, 10] {
        let inst = miter_instance(width, 7);
        for backend in SolverBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{backend}"), width),
                &width,
                |b, _| {
                    b.iter(|| {
                        let verdict = verify(black_box(&inst), backend);
                        assert!(verdict.is_equivalent());
                        verdict
                    });
                },
            );
        }
    }
    group.finish();
}

/// Best-of-`reps` wall-clock seconds for `f` (whose side effects — the
/// verdict asserts — keep the work observable).
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn one_shot_summary() {
    println!("\n== one-shot complete equivalence proofs (N-P miters, 3n gates) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "width", "dpll", "cdcl", "speedup"
    );
    for width in [8usize, 10, 12, 14] {
        let inst = miter_instance(width, 7);
        let reps = if width >= 12 { 1 } else { 3 };
        let mut verdicts = Vec::new();
        let dpll_s = best_secs(reps, || verdicts.push(verify(&inst, SolverBackend::Dpll)));
        let cdcl_s = best_secs(reps, || verdicts.push(verify(&inst, SolverBackend::Cdcl)));
        // Bit-identical verdicts on every run of either backend.
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
        assert!(verdicts[0].is_equivalent());
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>8.1}x",
            dpll_s * 1e3,
            cdcl_s * 1e3,
            dpll_s / cdcl_s
        );
    }
    // Width 16 — where the DPLL is no longer worth waiting for: CDCL
    // alone must still complete the proof.
    let width = 16usize;
    let inst = miter_instance(width, 7);
    let mut equivalent = false;
    let cdcl_s = best_secs(1, || {
        equivalent = verify(&inst, SolverBackend::Cdcl).is_equivalent();
    });
    assert!(equivalent, "width {width} must complete on CDCL");
    println!(
        "{width:>6} {:>12} {:>10.1}ms {:>9}",
        "-",
        cdcl_s * 1e3,
        "(cdcl)"
    );
}

/// The serving-layer access pattern: `REPLAYS` verdicts per miter
/// family. The DPLL is stateless and pays full price each time; the
/// CDCL solver is retained (as in the per-shard cache) and answers warm
/// verdicts from its learned clauses.
fn verdict_stream_summary() {
    println!("\n== verdict streams: {REPLAYS} verdicts per family (per-shard solver reuse) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "width", "dpll", "cdcl", "speedup"
    );
    for width in [8usize, 10, 12] {
        let inst = miter_instance(width, 7);
        let miter = MiterEncoding::build(&inst.c1, &inst.c2, &inst.witness).expect("widths agree");
        let hint = miter.input_hint();

        let dpll_s = best_secs(2, || {
            for _ in 0..REPLAYS {
                let solve = Solver::new(&miter.cnf)
                    .with_branch_hint(hint.clone())
                    .solve();
                assert_eq!(solve, Solve::Unsat);
            }
        });
        let cdcl_s = best_secs(2, || {
            let mut solver = CdclSolver::new(&miter.cnf).with_branch_hint(hint.clone());
            for _ in 0..REPLAYS {
                // Bit-identical to the DPLL verdict on every replay.
                assert_eq!(solver.solve(), Solve::Unsat);
            }
        });
        let speedup = dpll_s / cdcl_s;
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>8.1}x",
            dpll_s * 1e3,
            cdcl_s * 1e3,
            speedup
        );
        if width == 10 {
            assert!(
                speedup >= 5.0,
                "acceptance bar: CDCL must be ≥ 5x DPLL on width-10 verdict streams \
                 (got {speedup:.1}x)"
            );
        }
    }
}

/// The witness-family sweep: verdicts for `FAMILY_CANDIDATES` N-N
/// witness candidates against one pair, shared-incremental vs 8 cold
/// solves — the PR-5 headline.
///
/// The pair is built with a **planted witness family**: a nonlinear
/// random cascade on the low `n-3` lines tensored with a linear
/// (CNOT/NOT) cascade on the top 3. A linear block satisfies
/// `g(x ⊕ ν) = g(x) ⊕ (g(ν) ⊕ g(0))` for *every* mask, so all 8 masks
/// over the top lines are genuine N-N witnesses — every candidate
/// verdict is a full UNSAT equivalence proof, the expensive direction.
///
/// The cold path is what pre-enumeration code had to do: a fresh baked
/// miter and a fresh solver per candidate (`check_witness_sat_with`).
/// The family path builds one selector-encoded [`FamilyMiter`] plus one
/// [`CdclSolver`] (both inside the timed region) and answers every
/// candidate with `solve_under`: the nonlinear block's selectors keep
/// the same polarity across the whole family, so the clauses learned in
/// the first proof (~300 conflicts at width 10) collapse the remaining
/// proofs to a few dozen conflicts each. Candidates are swept in Gray
/// order so consecutive assumption sets differ in one selector.
/// The acceptance bar lives here: **≥ 3× at width 10**.
const FAMILY_CANDIDATES: usize = 8;

/// A reversible product circuit: nonlinear (Toffoli/CNOT/NOT) cascade on
/// lines `0..split`, linear (CNOT/NOT) cascade on `split..width`, no
/// gate crossing the cut.
fn product_circuit(
    width: usize,
    split: usize,
    gates: usize,
    rng: &mut rand::rngs::StdRng,
) -> revmatch_circuit::Circuit {
    use rand::Rng;
    use revmatch_circuit::Gate;
    let mut gs = Vec::with_capacity(gates);
    let other = |t: usize, lo: usize, hi: usize, rng: &mut rand::rngs::StdRng| loop {
        let a = rng.gen_range(lo..hi);
        if a != t {
            return a;
        }
    };
    for _ in 0..gates {
        if rng.gen_bool(0.25) {
            // Linear-block gate.
            let t = rng.gen_range(split..width);
            if rng.gen_bool(0.3) {
                gs.push(Gate::not(t));
            } else {
                gs.push(Gate::cnot(other(t, split, width, rng), t));
            }
        } else {
            // Nonlinear-block gate.
            let t = rng.gen_range(0..split);
            match rng.gen_range(0..3) {
                0 => gs.push(Gate::not(t)),
                1 => gs.push(Gate::cnot(other(t, 0, split, rng), t)),
                _ => {
                    let a = other(t, 0, split, rng);
                    let b = loop {
                        let b = rng.gen_range(0..split);
                        if b != t && b != a {
                            break b;
                        }
                    };
                    gs.push(Gate::toffoli(a, b, t));
                }
            }
        }
    }
    revmatch_circuit::Circuit::from_gates(width, gs).expect("lines in range")
}

/// The 8 planted N-N witnesses: Gray-ordered masks over the linear
/// block, each with its induced output mask `g(ν) ⊕ g(0)`.
fn family_candidates(c2: &revmatch_circuit::Circuit, split: usize) -> Vec<MatchWitness> {
    let width = c2.width();
    let id = revmatch_circuit::LinePermutation::identity(width);
    let base = c2.apply(0);
    (0..FAMILY_CANDIDATES as u64)
        .map(|i| {
            let nu = (i ^ (i >> 1)) << split;
            let mu = c2.apply(nu) ^ base;
            MatchWitness::new(
                revmatch_circuit::NpTransform::new(
                    NegationMask::new(nu, width).expect("mask in range"),
                    id.clone(),
                )
                .expect("same width"),
                revmatch_circuit::NpTransform::new(
                    NegationMask::new(mu, width).expect("mask in range"),
                    id.clone(),
                )
                .expect("same width"),
            )
            .expect("same width")
        })
        .collect()
}

fn family_sweep_summary() {
    println!(
        "\n== witness-family sweeps: {FAMILY_CANDIDATES} planted N-N witnesses per pair \
         (shared incremental solver vs cold miter per candidate) =="
    );
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "width", "cold×8", "family", "speedup"
    );
    for width in [8usize, 10, 12] {
        let split = width - 3;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let c2 = product_circuit(width, split, 3 * width, &mut rng);
        let c1 = c2.clone();
        let candidates = family_candidates(&c2, split);

        // Cold baseline: a fresh baked miter + solver per candidate.
        let mut cold_verdicts = Vec::new();
        let cold_s = best_secs(3, || {
            cold_verdicts.clear();
            for w in &candidates {
                let verdict =
                    check_witness_sat_with(&c1, &c2, w, SolverBackend::Cdcl).expect("widths agree");
                cold_verdicts.push(verdict.is_equivalent());
            }
        });

        // Family path: one selector miter, one solver, assumptions per
        // candidate — encoding and solver construction are in the timed
        // region.
        let mut family_verdicts = Vec::new();
        let family_s = best_secs(3, || {
            family_verdicts.clear();
            let miter = FamilyMiter::build(&c1, &c2, WitnessFamily::BothNegations)
                .expect("width under the family encode cap");
            let mut solver = CdclSolver::new(&miter.cnf).with_branch_hint(miter.input_hint());
            for w in &candidates {
                let assumptions = miter.assumptions(w).expect("candidate in family");
                let is_witness =
                    matches!(solver.solve_under(&assumptions), AssumedSolve::Unsat { .. });
                family_verdicts.push(is_witness);
            }
        });

        assert_eq!(
            cold_verdicts, family_verdicts,
            "width {width}: family sweep must reproduce the cold verdicts"
        );
        assert!(
            cold_verdicts.iter().all(|&v| v),
            "width {width}: every planted mask must verify"
        );
        let speedup = cold_s / family_s;
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>8.1}x",
            cold_s * 1e3,
            family_s * 1e3,
            speedup
        );
        if width == 10 {
            assert!(
                speedup >= 3.0,
                "acceptance bar: the shared incremental family sweep must be ≥ 3x \
                 {FAMILY_CANDIDATES} cold solves at width 10 (got {speedup:.1}x)"
            );
        }
    }
}

criterion_group!(benches, bench_miter_backends);

fn main() {
    benches();
    one_shot_summary();
    verdict_stream_summary();
    family_sweep_summary();
}
