//! CDCL vs DPLL on equivalence miters — the PR-3 headline comparison.
//!
//! The UNSAT direction (proving two circuits equivalent) is where a
//! DPLL without clause learning pays full price: with the input branch
//! hint it must visit all `2^n` input assignments, re-scanning the
//! clause list at every node. CDCL's learned clauses cut the proof far
//! below input enumeration (measured: ~1.2k conflicts at width 12 and
//! ~3k at width 16, against 4k / 65k input cubes), and its watched
//! propagation touches only relevant clauses — so the one-shot gap
//! grows with width, crossing 5× near width 12 and reaching ~15× at 14.
//!
//! The serving layer never solves one-shot, though: shard routing sends
//! the same miter family to the same worker, whose cached `CdclSolver`
//! keeps the learned refutation across jobs. The headline **verdict
//! stream** measurement below replays each family `REPLAYS` times —
//! CDCL warm-path verdicts answer from the clause database — and this
//! is where the acceptance bar lives: **≥ 5× over DPLL at width 10,
//! with bit-identical verdicts**. One-shot cold numbers are printed
//! alongside, unmassaged.
//!
//! Run with: `cargo bench -p revmatch-bench --bench sat_miters`.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch::{
    check_witness_sat_budgeted_with, check_witness_sat_with, random_wide_instance, Equivalence,
    FamilyMiter, MatchWitness, MiterEncoding, PromiseInstance, Side, SolverBackend, WitnessFamily,
};
use revmatch_circuit::NegationMask;
use revmatch_sat::{AssumedSolve, CdclSolver, SatOptions, Solve, Solver};

/// Budget far above what either backend needs at the measured widths, so
/// every verdict is definitive and the comparison is apples to apples.
const BUDGET: usize = 50_000_000;

/// Verdicts per miter family in the stream measurement — the serving
/// pattern the per-shard solver cache exists for.
const REPLAYS: usize = 8;

/// A promised N-P pair (planted witness) whose miter is UNSAT — the
/// equivalence-proof direction, on the 3n-gate cascades the serving
/// mixes use.
fn miter_instance(width: usize, seed: u64) -> PromiseInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_wide_instance(
        Equivalence::new(Side::N, Side::P),
        width,
        3 * width,
        &mut rng,
    )
}

fn verify(inst: &PromiseInstance, backend: SolverBackend) -> revmatch::MiterVerdict {
    check_witness_sat_budgeted_with(&inst.c1, &inst.c2, &inst.witness, BUDGET, backend)
        .expect("widths agree")
}

fn bench_miter_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("miter_unsat");
    group.sample_size(10);
    for &width in &[8usize, 10] {
        let inst = miter_instance(width, 7);
        for backend in SolverBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{backend}"), width),
                &width,
                |b, _| {
                    b.iter(|| {
                        let verdict = verify(black_box(&inst), backend);
                        assert!(verdict.is_equivalent());
                        verdict
                    });
                },
            );
        }
    }
    group.finish();
}

/// Best-of-`reps` wall-clock seconds for `f` (whose side effects — the
/// verdict asserts — keep the work observable).
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn one_shot_summary() {
    println!("\n== one-shot complete equivalence proofs (N-P miters, 3n gates) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "width", "dpll", "cdcl", "speedup"
    );
    for width in [8usize, 10, 12, 14] {
        let inst = miter_instance(width, 7);
        let reps = if width >= 12 { 1 } else { 3 };
        let mut verdicts = Vec::new();
        let dpll_s = best_secs(reps, || verdicts.push(verify(&inst, SolverBackend::Dpll)));
        let cdcl_s = best_secs(reps, || verdicts.push(verify(&inst, SolverBackend::Cdcl)));
        // Bit-identical verdicts on every run of either backend.
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
        assert!(verdicts[0].is_equivalent());
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>8.1}x",
            dpll_s * 1e3,
            cdcl_s * 1e3,
            dpll_s / cdcl_s
        );
    }
    // Width 16 — where the DPLL is no longer worth waiting for: CDCL
    // alone must still complete the proof.
    let width = 16usize;
    let inst = miter_instance(width, 7);
    let mut equivalent = false;
    let cdcl_s = best_secs(1, || {
        equivalent = verify(&inst, SolverBackend::Cdcl).is_equivalent();
    });
    assert!(equivalent, "width {width} must complete on CDCL");
    println!(
        "{width:>6} {:>12} {:>10.1}ms {:>9}",
        "-",
        cdcl_s * 1e3,
        "(cdcl)"
    );
}

/// The PR-9 width ceiling: one-shot complete equivalence proofs on the
/// upgraded CDCL (LBD tiers + inprocessing + XOR/Gauss all on) from
/// width 14 up to 20 — widths the PR-3 core never attempted. The
/// acceptance bars live here: **width 18 within 1 s, width 20 in
/// single-digit seconds**, every verdict a definitive UNSAT.
fn width_ceiling_summary() {
    println!("\n== width ceiling: one-shot complete proofs, upgraded CDCL (lbd,inproc,xor) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>8}",
        "width", "cdcl", "conflicts", "learned", "xors"
    );
    for width in [14usize, 16, 18, 20] {
        let inst = miter_instance(width, 7);
        let miter = MiterEncoding::build(&inst.c1, &inst.c2, &inst.witness).expect("widths agree");
        let (mut conflicts, mut learned, mut xors) = (0usize, 0usize, 0usize);
        let secs = best_secs(if width >= 18 { 1 } else { 2 }, || {
            let mut solver = CdclSolver::new(&miter.cnf)
                .with_options(SatOptions::ALL)
                .with_branch_hint(miter.input_hint());
            assert_eq!(solver.solve(), Solve::Unsat);
            conflicts = solver.conflicts();
            learned = solver.num_learned();
            xors = solver.xors_extracted();
        });
        println!(
            "{width:>6} {:>10.1}ms {conflicts:>12} {learned:>10} {xors:>8}",
            secs * 1e3
        );
        if width == 18 {
            assert!(
                secs <= 1.0,
                "acceptance bar: width-18 proof must complete within 1 s (got {secs:.2}s)"
            );
        }
        if width == 20 {
            assert!(
                secs < 10.0,
                "acceptance bar: width-20 proof must complete in single-digit seconds \
                 (got {secs:.2}s)"
            );
        }
    }
}

/// The PR-9 ablation matrix: LBD clause management on/off × XOR/Gauss
/// on/off (inprocessing off throughout, so each cell is a pure
/// two-factor read) on one-shot width-14 proofs, plus the fully-off
/// PR-3 baseline column. Every cell must report the same UNSAT verdict;
/// the floor asserts the upgrades actually pay at the width where the
/// old core started to struggle.
fn option_matrix_summary() {
    let width = 14usize;
    let inst = miter_instance(width, 7);
    let miter = MiterEncoding::build(&inst.c1, &inst.c2, &inst.witness).expect("widths agree");
    println!("\n== option matrix: one-shot width-{width} proofs, lbd × xor (inproc off) ==");
    println!("{:>16} {:>12} {:>12}", "options", "time", "conflicts");
    let mut cells = Vec::new();
    for (lbd, xor) in [(false, false), (true, false), (false, true), (true, true)] {
        let opts = SatOptions {
            lbd,
            inproc: false,
            xor,
        };
        let mut conflicts = 0usize;
        let secs = best_secs(2, || {
            let mut solver = CdclSolver::new(&miter.cnf)
                .with_options(opts)
                .with_branch_hint(miter.input_hint());
            // Bit-identical verdict in every cell.
            assert_eq!(solver.solve(), Solve::Unsat);
            conflicts = solver.conflicts();
        });
        println!(
            "{:>16} {:>10.1}ms {conflicts:>12}",
            opts.to_string(),
            secs * 1e3
        );
        cells.push(((lbd, xor), secs));
    }
    let baseline = cells[0].1;
    let full = cells[3].1;
    let speedup = baseline / full;
    println!("{:>16} {:>11.1}x", "lbd+xor vs none", speedup);
    assert!(
        speedup >= 1.5,
        "acceptance bar: lbd+xor must beat the plain core by ≥ 1.5x on width-{width} \
         one-shot proofs (got {speedup:.1}x)"
    );
}

/// The serving-layer access pattern: `REPLAYS` verdicts per miter
/// family. The DPLL is stateless and pays full price each time; the
/// CDCL solver is retained (as in the per-shard cache) and answers warm
/// verdicts from its learned clauses.
fn verdict_stream_summary() {
    println!("\n== verdict streams: {REPLAYS} verdicts per family (per-shard solver reuse) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "width", "dpll", "cdcl", "speedup"
    );
    for width in [8usize, 10, 12] {
        let inst = miter_instance(width, 7);
        let miter = MiterEncoding::build(&inst.c1, &inst.c2, &inst.witness).expect("widths agree");
        let hint = miter.input_hint();

        let dpll_s = best_secs(2, || {
            for _ in 0..REPLAYS {
                let solve = Solver::new(&miter.cnf)
                    .with_branch_hint(hint.clone())
                    .solve();
                assert_eq!(solve, Solve::Unsat);
            }
        });
        let cdcl_s = best_secs(2, || {
            let mut solver = CdclSolver::new(&miter.cnf).with_branch_hint(hint.clone());
            for _ in 0..REPLAYS {
                // Bit-identical to the DPLL verdict on every replay.
                assert_eq!(solver.solve(), Solve::Unsat);
            }
        });
        let speedup = dpll_s / cdcl_s;
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>8.1}x",
            dpll_s * 1e3,
            cdcl_s * 1e3,
            speedup
        );
        if width == 10 {
            assert!(
                speedup >= 5.0,
                "acceptance bar: CDCL must be ≥ 5x DPLL on width-10 verdict streams \
                 (got {speedup:.1}x)"
            );
        }
    }
}

/// The witness-family sweep: verdicts for `FAMILY_CANDIDATES` N-N
/// witness candidates against one pair, measured three ways — the PR-5
/// headline, re-measured against the upgraded CDCL core.
///
/// The pair is built with a **planted witness family**: a nonlinear
/// random cascade on the low `n-5` lines tensored with a linear
/// (CNOT/NOT) cascade on the top 5. A linear block satisfies
/// `g(x ⊕ ν) = g(x) ⊕ (g(ν) ⊕ g(0))` for *every* mask, so all 32 masks
/// over the top lines are genuine N-N witnesses — every candidate
/// verdict is a full UNSAT equivalence proof, the expensive direction.
///
/// Three measurements:
/// - **cold** — what pre-enumeration code had to do: a fresh baked
///   miter and a fresh solver per candidate (`check_witness_sat_with`).
/// - **first** — one selector-encoded [`FamilyMiter`] plus one
///   [`CdclSolver`], encoding and construction inside the timed region,
///   every candidate answered with `solve_under`. Clauses learned on the
///   first proof prune the rest; candidates are swept in Gray order so
///   consecutive assumption sets differ in one selector.
/// - **warm** — the same sweep replayed on the *retained* solver. This
///   is the serving steady state: each shard's `ShardCaches` keeps the
///   family solver alive across jobs, so every enumerate/verdict job for
///   a pair after the first runs against a solver whose learned clauses
///   already cover the family. Warm proofs close on propagation alone
///   (zero conflicts at these widths).
///
/// The acceptance bar lives here: **warm ≥ 6× over cold at width 10**
/// (raised from the 4.2× first-sweep bar that held before the LBD core),
/// with all three verdict vectors bit-identical.
const FAMILY_CANDIDATES: usize = 32;

/// A reversible product circuit: nonlinear (Toffoli/CNOT/NOT) cascade on
/// lines `0..split`, linear (CNOT/NOT) cascade on `split..width`, no
/// gate crossing the cut.
fn product_circuit(
    width: usize,
    split: usize,
    gates: usize,
    rng: &mut rand::rngs::StdRng,
) -> revmatch_circuit::Circuit {
    use rand::Rng;
    use revmatch_circuit::Gate;
    let mut gs = Vec::with_capacity(gates);
    let other = |t: usize, lo: usize, hi: usize, rng: &mut rand::rngs::StdRng| loop {
        let a = rng.gen_range(lo..hi);
        if a != t {
            return a;
        }
    };
    for _ in 0..gates {
        if rng.gen_bool(0.25) {
            // Linear-block gate.
            let t = rng.gen_range(split..width);
            if rng.gen_bool(0.3) {
                gs.push(Gate::not(t));
            } else {
                gs.push(Gate::cnot(other(t, split, width, rng), t));
            }
        } else {
            // Nonlinear-block gate.
            let t = rng.gen_range(0..split);
            match rng.gen_range(0..3) {
                0 => gs.push(Gate::not(t)),
                1 => gs.push(Gate::cnot(other(t, 0, split, rng), t)),
                _ => {
                    let a = other(t, 0, split, rng);
                    let b = loop {
                        let b = rng.gen_range(0..split);
                        if b != t && b != a {
                            break b;
                        }
                    };
                    gs.push(Gate::toffoli(a, b, t));
                }
            }
        }
    }
    revmatch_circuit::Circuit::from_gates(width, gs).expect("lines in range")
}

/// The 32 planted N-N witnesses: Gray-ordered masks over the linear
/// block, each with its induced output mask `g(ν) ⊕ g(0)`.
fn family_candidates(c2: &revmatch_circuit::Circuit, split: usize) -> Vec<MatchWitness> {
    let width = c2.width();
    let id = revmatch_circuit::LinePermutation::identity(width);
    let base = c2.apply(0);
    (0..FAMILY_CANDIDATES as u64)
        .map(|i| {
            let nu = (i ^ (i >> 1)) << split;
            let mu = c2.apply(nu) ^ base;
            MatchWitness::new(
                revmatch_circuit::NpTransform::new(
                    NegationMask::new(nu, width).expect("mask in range"),
                    id.clone(),
                )
                .expect("same width"),
                revmatch_circuit::NpTransform::new(
                    NegationMask::new(mu, width).expect("mask in range"),
                    id.clone(),
                )
                .expect("same width"),
            )
            .expect("same width")
        })
        .collect()
}

fn family_sweep_summary() {
    println!(
        "\n== witness-family sweeps: {FAMILY_CANDIDATES} planted N-N witnesses per pair \
         (cold miter per candidate vs first/warm shared incremental sweep) =="
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "width", "cold×32", "first", "warm", "first-x", "warm-x"
    );
    for width in [8usize, 10, 12] {
        let split = width - 5;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let c2 = product_circuit(width, split, 3 * width, &mut rng);
        let c1 = c2.clone();
        let candidates = family_candidates(&c2, split);

        // Cold baseline: a fresh baked miter + solver per candidate.
        let mut cold_verdicts = Vec::new();
        let cold_s = best_secs(3, || {
            cold_verdicts.clear();
            for w in &candidates {
                let verdict =
                    check_witness_sat_with(&c1, &c2, w, SolverBackend::Cdcl).expect("widths agree");
                cold_verdicts.push(verdict.is_equivalent());
            }
        });

        // First sweep: one selector miter, one solver, assumptions per
        // candidate — encoding and solver construction are in the timed
        // region, exactly the cost of the first enumerate job on a pair.
        let mut first_verdicts = Vec::new();
        let mut retained = None;
        let first_s = best_secs(2, || {
            first_verdicts.clear();
            let miter = FamilyMiter::build(&c1, &c2, WitnessFamily::BothNegations)
                .expect("width under the family encode cap");
            let mut solver = CdclSolver::new(&miter.cnf)
                .with_options(SatOptions::ALL)
                .with_branch_hint(miter.input_hint());
            for w in &candidates {
                let assumptions = miter.assumptions(w).expect("candidate in family");
                let is_witness =
                    matches!(solver.solve_under(&assumptions), AssumedSolve::Unsat { .. });
                first_verdicts.push(is_witness);
            }
            retained = Some((miter, solver));
        });

        // Warm sweep: the same verdicts re-answered on the retained
        // solver — the per-shard cache steady state, where the clauses
        // learned on earlier jobs for the pair are already in the DB.
        let (miter, mut solver) = retained.expect("first sweep ran");
        let mut warm_verdicts = Vec::new();
        let warm_s = best_secs(3, || {
            warm_verdicts.clear();
            for w in &candidates {
                let assumptions = miter.assumptions(w).expect("candidate in family");
                let is_witness =
                    matches!(solver.solve_under(&assumptions), AssumedSolve::Unsat { .. });
                warm_verdicts.push(is_witness);
            }
        });

        assert_eq!(
            cold_verdicts, first_verdicts,
            "width {width}: first family sweep must reproduce the cold verdicts"
        );
        assert_eq!(
            cold_verdicts, warm_verdicts,
            "width {width}: warm family sweep must reproduce the cold verdicts"
        );
        assert!(
            cold_verdicts.iter().all(|&v| v),
            "width {width}: every planted mask must verify"
        );
        let first_x = cold_s / first_s;
        let warm_x = cold_s / warm_s;
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>10.2}ms {:>8.1}x {:>8.1}x",
            cold_s * 1e3,
            first_s * 1e3,
            warm_s * 1e3,
            first_x,
            warm_x
        );
        if width == 10 {
            assert!(
                warm_x >= 6.0,
                "acceptance bar: the warm family sweep on the retained solver must be \
                 ≥ 6x {FAMILY_CANDIDATES} cold solves at width 10 (got {warm_x:.1}x)"
            );
        }
    }
}

criterion_group!(benches, bench_miter_backends);

fn main() {
    benches();
    one_shot_summary();
    width_ceiling_summary();
    option_matrix_summary();
    verdict_stream_summary();
    family_sweep_summary();
}
