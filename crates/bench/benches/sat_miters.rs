//! CDCL vs DPLL on equivalence miters — the PR-3 headline comparison.
//!
//! The UNSAT direction (proving two circuits equivalent) is where a
//! DPLL without clause learning pays full price: with the input branch
//! hint it must visit all `2^n` input assignments, re-scanning the
//! clause list at every node. CDCL's learned clauses cut the proof far
//! below input enumeration (measured: ~1.2k conflicts at width 12 and
//! ~3k at width 16, against 4k / 65k input cubes), and its watched
//! propagation touches only relevant clauses — so the one-shot gap
//! grows with width, crossing 5× near width 12 and reaching ~15× at 14.
//!
//! The serving layer never solves one-shot, though: shard routing sends
//! the same miter family to the same worker, whose cached `CdclSolver`
//! keeps the learned refutation across jobs. The headline **verdict
//! stream** measurement below replays each family `REPLAYS` times —
//! CDCL warm-path verdicts answer from the clause database — and this
//! is where the acceptance bar lives: **≥ 5× over DPLL at width 10,
//! with bit-identical verdicts**. One-shot cold numbers are printed
//! alongside, unmassaged.
//!
//! Run with: `cargo bench -p revmatch-bench --bench sat_miters`.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch::{
    check_witness_sat_budgeted_with, random_wide_instance, Equivalence, MiterEncoding,
    PromiseInstance, Side, SolverBackend,
};
use revmatch_sat::{CdclSolver, Solve, Solver};

/// Budget far above what either backend needs at the measured widths, so
/// every verdict is definitive and the comparison is apples to apples.
const BUDGET: usize = 50_000_000;

/// Verdicts per miter family in the stream measurement — the serving
/// pattern the per-shard solver cache exists for.
const REPLAYS: usize = 8;

/// A promised N-P pair (planted witness) whose miter is UNSAT — the
/// equivalence-proof direction, on the 3n-gate cascades the serving
/// mixes use.
fn miter_instance(width: usize, seed: u64) -> PromiseInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_wide_instance(
        Equivalence::new(Side::N, Side::P),
        width,
        3 * width,
        &mut rng,
    )
}

fn verify(inst: &PromiseInstance, backend: SolverBackend) -> revmatch::MiterVerdict {
    check_witness_sat_budgeted_with(&inst.c1, &inst.c2, &inst.witness, BUDGET, backend)
        .expect("widths agree")
}

fn bench_miter_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("miter_unsat");
    group.sample_size(10);
    for &width in &[8usize, 10] {
        let inst = miter_instance(width, 7);
        for backend in SolverBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{backend}"), width),
                &width,
                |b, _| {
                    b.iter(|| {
                        let verdict = verify(black_box(&inst), backend);
                        assert!(verdict.is_equivalent());
                        verdict
                    });
                },
            );
        }
    }
    group.finish();
}

/// Best-of-`reps` wall-clock seconds for `f` (whose side effects — the
/// verdict asserts — keep the work observable).
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn one_shot_summary() {
    println!("\n== one-shot complete equivalence proofs (N-P miters, 3n gates) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "width", "dpll", "cdcl", "speedup"
    );
    for width in [8usize, 10, 12, 14] {
        let inst = miter_instance(width, 7);
        let reps = if width >= 12 { 1 } else { 3 };
        let mut verdicts = Vec::new();
        let dpll_s = best_secs(reps, || verdicts.push(verify(&inst, SolverBackend::Dpll)));
        let cdcl_s = best_secs(reps, || verdicts.push(verify(&inst, SolverBackend::Cdcl)));
        // Bit-identical verdicts on every run of either backend.
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
        assert!(verdicts[0].is_equivalent());
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>8.1}x",
            dpll_s * 1e3,
            cdcl_s * 1e3,
            dpll_s / cdcl_s
        );
    }
    // Width 16 — where the DPLL is no longer worth waiting for: CDCL
    // alone must still complete the proof.
    let width = 16usize;
    let inst = miter_instance(width, 7);
    let mut equivalent = false;
    let cdcl_s = best_secs(1, || {
        equivalent = verify(&inst, SolverBackend::Cdcl).is_equivalent();
    });
    assert!(equivalent, "width {width} must complete on CDCL");
    println!(
        "{width:>6} {:>12} {:>10.1}ms {:>9}",
        "-",
        cdcl_s * 1e3,
        "(cdcl)"
    );
}

/// The serving-layer access pattern: `REPLAYS` verdicts per miter
/// family. The DPLL is stateless and pays full price each time; the
/// CDCL solver is retained (as in the per-shard cache) and answers warm
/// verdicts from its learned clauses.
fn verdict_stream_summary() {
    println!("\n== verdict streams: {REPLAYS} verdicts per family (per-shard solver reuse) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "width", "dpll", "cdcl", "speedup"
    );
    for width in [8usize, 10, 12] {
        let inst = miter_instance(width, 7);
        let miter = MiterEncoding::build(&inst.c1, &inst.c2, &inst.witness).expect("widths agree");
        let hint = miter.input_hint();

        let dpll_s = best_secs(2, || {
            for _ in 0..REPLAYS {
                let solve = Solver::new(&miter.cnf)
                    .with_branch_hint(hint.clone())
                    .solve();
                assert_eq!(solve, Solve::Unsat);
            }
        });
        let cdcl_s = best_secs(2, || {
            let mut solver = CdclSolver::new(&miter.cnf).with_branch_hint(hint.clone());
            for _ in 0..REPLAYS {
                // Bit-identical to the DPLL verdict on every replay.
                assert_eq!(solver.solve(), Solve::Unsat);
            }
        });
        let speedup = dpll_s / cdcl_s;
        println!(
            "{width:>6} {:>10.1}ms {:>10.1}ms {:>8.1}x",
            dpll_s * 1e3,
            cdcl_s * 1e3,
            speedup
        );
        if width == 10 {
            assert!(
                speedup >= 5.0,
                "acceptance bar: CDCL must be ≥ 5x DPLL on width-10 verdict streams \
                 (got {speedup:.1}x)"
            );
        }
    }
}

criterion_group!(benches, bench_miter_backends);

fn main() {
    benches();
    one_shot_summary();
    verdict_stream_summary();
}
