//! Criterion benches for every Table 1 matcher (wall-clock companion to
//! the query-count harness in `src/bin/table1.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use revmatch::{solve_promise, Equivalence, MatcherConfig, Oracle, ProblemOracles};

fn bench_with_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_with_inverse");
    for name in ["I-N", "N-I", "I-P", "P-I", "I-NP", "NP-I", "P-N", "N-P"] {
        let e: Equivalence = name.parse().unwrap();
        for &n in &[8usize, 32] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let inst = revmatch::random_wide_instance(e, n, 3 * n, &mut rng);
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            let c1_inv = c1.inverse_oracle();
            let c2_inv = c2.inverse_oracle();
            let config = MatcherConfig::with_epsilon(1e-3);
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let oracles = ProblemOracles::with_inverses(&c1, &c2, &c1_inv, &c2_inv);
                    solve_promise(e, &oracles, &config, &mut rng).expect("promised")
                });
            });
        }
    }
    group.finish();
}

fn bench_without_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_without_inverse");
    for name in ["I-N", "I-P", "I-NP", "P-I", "P-N"] {
        let e: Equivalence = name.parse().unwrap();
        for &n in &[8usize, 32] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            let inst = revmatch::random_wide_instance(e, n, 3 * n, &mut rng);
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            let config = MatcherConfig::with_epsilon(1e-9);
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let oracles = ProblemOracles::without_inverses(&c1, &c2);
                    // The randomized matchers carry an ε failure budget;
                    // over criterion's millions of iterations rare
                    // failures are expected and benign for timing.
                    solve_promise(e, &oracles, &config, &mut rng).ok()
                });
            });
        }
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force");
    group.sample_size(10);
    for &n in &[3usize, 4] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let e = Equivalence::new(revmatch::Side::Np, revmatch::Side::Np);
        let inst = revmatch::random_instance(e, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("NP-NP", n), &n, |b, _| {
            b.iter(|| {
                revmatch::brute_force_match(&inst.c1, &inst.c2, e)
                    .unwrap()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_with_inverse,
    bench_without_inverse,
    bench_brute_force
);
criterion_main!(benches);
