//! # revmatch-bench — experiment harness
//!
//! Regenerates every table and figure of the paper as a measured artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — query complexity of every tractable equivalence |
//! | `figure1` | Fig. 1 — domination lattice with empirical edge checks |
//! | `theorem1` | Thm. 1 / Eq. 2 — classical `2^{n/2}` vs quantum `O(n)` |
//! | `eq1` | Eq. 1 — randomized I-P success probability vs `k` |
//! | `figure3` | Fig. 3 — swap-test outcome statistics vs overlap |
//! | `alg1_confidence` | Algorithm 1 — failure rate `≤ 2^{-k}` |
//! | `hardness` | Fig. 5 / Thms. 2–3 — UNIQUE-SAT reduction round trips |
//!
//! Criterion benches (`cargo bench -p revmatch-bench`) cover the same
//! algorithms for wall-clock numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG used across harness binaries so printed rows are
/// reproducible run to run.
pub fn harness_rng() -> StdRng {
    StdRng::seed_from_u64(0x0DAC_2024)
}

/// Median of a sample (sorts a copy).
///
/// # Panics
///
/// Panics on an empty sample.
pub fn median(samples: &[u64]) -> u64 {
    assert!(!samples.is_empty());
    let mut s = samples.to_vec();
    s.sort_unstable();
    s[s.len() / 2]
}

/// Arithmetic mean of a sample.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn mean(samples: &[u64]) -> f64 {
    assert!(!samples.is_empty());
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 2, 3]), 3);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2, 4]), 3.0);
    }

    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = harness_rng().gen();
        let b: u64 = harness_rng().gen();
        assert_eq!(a, b);
    }
}
