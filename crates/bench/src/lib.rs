//! # revmatch-bench — experiment harness
//!
//! Regenerates every table and figure of the paper as a measured artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — query complexity of every tractable equivalence |
//! | `figure1` | Fig. 1 — domination lattice with empirical edge checks |
//! | `theorem1` | Thm. 1 / Eq. 2 — classical `2^{n/2}` vs quantum `O(n)` |
//! | `eq1` | Eq. 1 — randomized I-P success probability vs `k` |
//! | `figure3` | Fig. 3 — swap-test outcome statistics vs overlap |
//! | `alg1_confidence` | Algorithm 1 — failure rate `≤ 2^{-k}` |
//! | `hardness` | Fig. 5 / Thms. 2–3 — UNIQUE-SAT reduction round trips |
//!
//! Criterion benches (`cargo bench -p revmatch-bench`) cover the same
//! algorithms for wall-clock numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG used across harness binaries so printed rows are
/// reproducible run to run.
pub fn harness_rng() -> StdRng {
    StdRng::seed_from_u64(0x0DAC_2024)
}

/// Minimal `--key value` / `--key=value` flag parser shared by the bench
/// binaries (no external CLI crate in the build container).
///
/// Unknown flags abort with the binary's usage string, so typos fail loud
/// instead of silently running defaults.
#[derive(Debug)]
pub struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    /// Parses `std::env::args`, validating every flag against `known`.
    /// Exits the process with `usage` on an unknown flag or a flag with a
    /// missing value.
    pub fn parse(known: &[&str], usage: &str) -> Self {
        match Self::parse_iter(std::env::args().skip(1), known) {
            Ok(flags) => flags,
            Err(msg) => {
                eprintln!("{msg}\n{usage}");
                std::process::exit(2);
            }
        }
    }

    /// Testable core of [`Flags::parse`].
    ///
    /// # Errors
    ///
    /// Describes the first unknown flag, missing value, or stray
    /// positional argument.
    pub fn parse_iter(
        args: impl IntoIterator<Item = String>,
        known: &[&str],
    ) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let Some(stripped) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument: {arg}"));
            };
            let (key, value) = match stripped.split_once('=') {
                Some((k, v)) => (k.to_owned(), v.to_owned()),
                None => match args.next() {
                    Some(v) => (stripped.to_owned(), v),
                    None => return Err(format!("flag --{stripped} needs a value")),
                },
            };
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown flag: --{key}"));
            }
            pairs.push((key, value));
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The flag as `usize`, or `default` when absent.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name}: not a number: {v}"))
            })
            .unwrap_or(default)
    }

    /// The flag as `u64`, or `default` when absent.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name}: not a number: {v}"))
            })
            .unwrap_or(default)
    }

    /// The flag as `f64`, or `default` when absent.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name}: not a number: {v}"))
            })
            .unwrap_or(default)
    }

    /// The flag as a string, or `default` when absent.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_owned()
    }
}

/// Names of the serving-layer flags shared by the bench binaries
/// (`--shards`, `--queue-capacity`).
pub const SERVICE_FLAGS: [&str; 2] = ["shards", "queue-capacity"];

/// Reads the shared serving-layer flags: worker-shard count (default:
/// available parallelism) and per-lane queue capacity (default 64).
pub fn service_flags(flags: &Flags) -> (usize, usize) {
    let default_shards = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (
        flags.get_usize("shards", default_shards),
        flags.get_usize("queue-capacity", 64),
    )
}

/// Median of a sample (sorts a copy).
///
/// # Panics
///
/// Panics on an empty sample.
pub fn median(samples: &[u64]) -> u64 {
    assert!(!samples.is_empty());
    let mut s = samples.to_vec();
    s.sort_unstable();
    s[s.len() / 2]
}

/// Arithmetic mean of a sample.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn mean(samples: &[u64]) -> f64 {
    assert!(!samples.is_empty());
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 2, 3]), 3);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2, 4]), 3.0);
    }

    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = harness_rng().gen();
        let b: u64 = harness_rng().gen();
        assert_eq!(a, b);
    }

    fn flags_of(args: &[&str], known: &[&str]) -> Result<Flags, String> {
        Flags::parse_iter(args.iter().map(|s| (*s).to_owned()), known)
    }

    #[test]
    fn flags_parse_both_syntaxes_last_wins() {
        let f = flags_of(
            &["--shards", "4", "--shards=8", "--rate=2.5"],
            &["shards", "rate"],
        )
        .unwrap();
        assert_eq!(f.get_usize("shards", 1), 8);
        assert_eq!(f.get_f64("rate", 1.0), 2.5);
        assert_eq!(f.get_u64("seed", 7), 7, "absent flag falls back");
        assert_eq!(f.get_str("mix", "NP-I"), "NP-I");
    }

    #[test]
    fn flags_reject_unknown_and_dangling() {
        assert!(flags_of(&["--bogus", "1"], &["shards"]).is_err());
        assert!(flags_of(&["--shards"], &["shards"]).is_err());
        assert!(flags_of(&["positional"], &["shards"]).is_err());
    }

    #[test]
    fn service_flag_defaults() {
        let f = flags_of(&["--queue-capacity", "16"], &SERVICE_FLAGS).unwrap();
        let (shards, capacity) = service_flags(&f);
        assert!(shards >= 1);
        assert_eq!(capacity, 16);
    }
}
