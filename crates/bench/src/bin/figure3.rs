//! Regenerates **Figure 3**: swap-test outcome statistics.
//!
//! The swap test measures `1` with probability `½ − ½|⟨ψ1|ψ2⟩|²`. We
//! sweep the overlap through `{0, ⅛, ¼, ½, ¾, 1}` using product states,
//! run both the full 2n+1-qubit circuit simulation and the analytic
//! sampler, and compare the observed frequencies with the formula.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin figure3`

use revmatch_bench::harness_rng;
use revmatch_quantum::{
    swap_test_probability, swap_test_shots, ProductState, Qubit, SwapTestMethod,
};

const SHOTS: usize = 20_000;

fn main() {
    let mut rng = harness_rng();

    // |⟨0|+⟩|² = ½ per qubit: j qubits in (|0⟩ vs |+⟩) give overlap 2^{-j}.
    // A fully flipped qubit (|0⟩ vs |1⟩) gives overlap 0.
    let cases: Vec<(&str, ProductState, ProductState)> = vec![
        (
            "identical",
            ProductState::uniform(3, Qubit::Plus),
            ProductState::uniform(3, Qubit::Plus),
        ),
        (
            "overlap 1/2",
            ProductState::uniform(3, Qubit::Plus).with_qubit(0, Qubit::Zero),
            ProductState::uniform(3, Qubit::Plus),
        ),
        (
            "overlap 1/4",
            ProductState::uniform(3, Qubit::Plus)
                .with_qubit(0, Qubit::Zero)
                .with_qubit(1, Qubit::Zero),
            ProductState::uniform(3, Qubit::Plus),
        ),
        (
            "overlap 1/8",
            ProductState::uniform(3, Qubit::Zero),
            ProductState::uniform(3, Qubit::Plus),
        ),
        (
            "orthogonal",
            ProductState::uniform(3, Qubit::Plus).with_qubit(2, Qubit::Zero),
            ProductState::uniform(3, Qubit::Plus).with_qubit(2, Qubit::One),
        ),
    ];

    println!("Figure 3: swap-test Pr[z=1] = 1/2 - 1/2 |<psi1|psi2>|^2  ({SHOTS} shots)\n");
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>14}",
        "case", "overlap^2", "formula", "full circuit", "analytic"
    );
    for (name, p1, p2) in cases {
        let s1 = p1.to_state_vector();
        let s2 = p2.to_state_vector();
        let overlap_sq = s1.inner_product(&s2).unwrap().norm_sqr();
        let formula = swap_test_probability(&s1, &s2).unwrap();
        let full = swap_test_shots(SwapTestMethod::FullCircuit, &s1, &s2, SHOTS, &mut rng).unwrap()
            as f64
            / SHOTS as f64;
        let fast = swap_test_shots(SwapTestMethod::Analytic, &s1, &s2, SHOTS, &mut rng).unwrap()
            as f64
            / SHOTS as f64;
        println!("{name:<12} {overlap_sq:>10.4} {formula:>12.4} {full:>14.4} {fast:>14.4}");
        assert!((full - formula).abs() < 0.02, "full-circuit stats off");
        assert!((fast - formula).abs() < 0.02, "analytic stats off");
    }
    println!("\nboth implementations track the formula within sampling error;");
    println!("identical states never fire, orthogonal states fire half the time.");
}
