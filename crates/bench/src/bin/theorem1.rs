//! Regenerates the **Theorem 1 / Eq. (2)** separation: the classical
//! collision matcher for N-I needs ~`2^{n/2}` queries while the quantum
//! Algorithm 1 needs `O(n log 1/ε)` — the paper's exponential speedup.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin theorem1`

use revmatch::{
    match_n_i_collision, match_n_i_quantum, match_n_i_simon, Equivalence, MatcherConfig, Oracle,
    Side,
};
use revmatch_bench::{harness_rng, mean, median};

const TRIALS: usize = 31;

fn main() {
    let mut rng = harness_rng();
    let config = MatcherConfig::with_epsilon(1e-6);
    let k = config.quantum_k;

    println!("Theorem 1 / Eq. (2): N-I matching without inverses");
    println!("classical collision vs quantum Algorithm 1 (k = {k}) vs Simon-style (footnote 2)");
    println!("{TRIALS} trials per width; sqrt(2^n) = birthday scale\n");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "n", "cls median", "cls mean", "sqrt(2^n)", "alg1 median", "simon med", "speedup"
    );

    for n in [2usize, 4, 6, 8, 10, 12, 14, 16, 18, 20] {
        let mut classical = Vec::new();
        let mut quantum = Vec::new();
        let mut simon = Vec::new();
        for _ in 0..TRIALS {
            // Synthesized uniform functions up to width 10; cheap random
            // MCT cascades beyond (queries stay O(gates), so the collision
            // counts remain honest).
            let e = Equivalence::new(Side::N, Side::I);
            let inst = if n <= 10 {
                revmatch::random_instance(e, n, &mut rng)
            } else {
                revmatch::random_wide_instance(e, n, 3 * n, &mut rng)
            };
            let c1 = Oracle::new(inst.c1.clone());
            let c2 = Oracle::new(inst.c2.clone());
            let outcome = match_n_i_collision(&c1, &c2, &mut rng).expect("same width");
            assert_eq!(
                outcome.witness.nu_x(),
                inst.witness.nu_x(),
                "collision matcher wrong"
            );
            classical.push(outcome.queries);

            // Quantum path up to 16 lines (analytic swap test keeps the
            // state vector at 2^n amplitudes), enough to pass the
            // crossover against the birthday curve.
            if n <= 16 {
                let c1 = Oracle::new(inst.c1.clone());
                let c2 = Oracle::new(inst.c2.clone());
                let nu = match_n_i_quantum(&c1, &c2, &config, &mut rng).expect("quantum N-I");
                assert_eq!(nu, inst.witness.nu_x(), "Algorithm 1 wrong");
                quantum.push(c1.queries() + c2.queries());
            }
            // The Simon-style matcher needs 2n+1 simulated qubits.
            if 2 * n < revmatch_quantum::MAX_QUBITS {
                let c1 = Oracle::new(inst.c1.clone());
                let c2 = Oracle::new(inst.c2.clone());
                let outcome = match_n_i_simon(&c1, &c2, &mut rng).expect("simon N-I");
                assert_eq!(
                    outcome.witness.nu_x(),
                    inst.witness.nu_x(),
                    "Simon matcher wrong"
                );
                simon.push(c1.queries() + c2.queries());
            }
        }
        let birthday = (2f64.powi(n as i32)).sqrt();
        let fmt = |v: &Vec<u64>| {
            if v.is_empty() {
                "-".to_owned()
            } else {
                median(v).to_string()
            }
        };
        let speedup = if quantum.is_empty() {
            "-".to_owned()
        } else {
            format!(
                "{:.1}x",
                median(&classical) as f64 / median(&quantum) as f64
            )
        };
        println!(
            "{n:>3} {:>12} {:>12.1} {:>12.1} {:>12} {:>12} {:>10}",
            median(&classical),
            mean(&classical),
            birthday,
            fmt(&quantum),
            fmt(&simon),
            speedup
        );
    }

    println!("\nexpected shape: classical column tracks sqrt(2^n) (doubles every 2 lines);");
    println!("Algorithm 1 grows ~linearly in n (slope ~2k); the Simon-style matcher");
    println!("needs only ~2(n+2) queries; both separations grow exponentially.");
}
