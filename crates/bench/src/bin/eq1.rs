//! Regenerates **Eq. (1)**: the success probability of the randomized I-P
//! signature-matching algorithm, `Pr >= 1 − n(n−1)/2^k`, versus the
//! empirically measured failure rate as a function of `k`.
//!
//! A failure is a signature collision: two output lines observing the same
//! bit sequence over the k random probes, which makes π ambiguous. The
//! matcher detects this itself and reports `RandomizedFailure`.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin eq1`

use rand::Rng;
use revmatch::{ClassicalOracle, Equivalence, MatchError, Oracle, Side};
use revmatch_bench::harness_rng;
use revmatch_circuit::width_mask;

const TRIALS: usize = 2000;

/// One trial of the randomized I-P core with a fixed k: returns false on a
/// signature collision (the failure event of Eq. 1).
fn trial(n: usize, k: usize, rng: &mut impl Rng) -> bool {
    // Signature uniqueness depends only on C1's output sequences over
    // random probes; use a random wide instance for realism.
    let inst = revmatch::random_wide_instance(Equivalence::new(Side::I, Side::P), n, 3 * n, rng);
    let c1 = Oracle::new(inst.c1);
    let mut sigs = vec![0u128; n];
    for t in 0..k {
        let x = rng.gen::<u64>() & width_mask(n);
        let y = c1.query(x);
        for (q, s) in sigs.iter_mut().enumerate() {
            *s |= u128::from((y >> q) & 1) << t;
        }
    }
    let mut sorted = sigs;
    sorted.sort_unstable();
    sorted.windows(2).all(|w| w[0] != w[1])
}

fn main() {
    let mut rng = harness_rng();
    println!("Eq. (1): randomized I-P success probability vs k ({TRIALS} trials per cell)\n");
    println!(
        "{:>3} {:>3} {:>14} {:>14} {:>8}",
        "n", "k", "empirical Pr", "bound 1-n(n-1)/2^k", "ok"
    );
    for n in [8usize, 16, 32] {
        for k in [4usize, 6, 8, 10, 12, 16, 20] {
            let successes = (0..TRIALS).filter(|_| trial(n, k, &mut rng)).count();
            let empirical = successes as f64 / TRIALS as f64;
            let bound = 1.0 - (n * (n - 1)) as f64 / 2f64.powi(k as i32);
            // The bound can be vacuous (negative) for small k.
            let ok = empirical >= bound.max(0.0) - 0.02; // 2% sampling slack
            println!("{n:>3} {k:>3} {empirical:>14.4} {:>18.4} {:>8}", bound, ok);
        }
        println!();
    }

    // End-to-end: the full matcher at the auto-chosen k essentially never
    // fails.
    println!("full matcher at k = ceil(log2(n(n-1)/eps)), eps = 1e-3:");
    for n in [8usize, 16, 32] {
        let mut failures = 0;
        let runs = 300;
        for _ in 0..runs {
            let inst = revmatch::random_wide_instance(
                Equivalence::new(Side::I, Side::P),
                n,
                3 * n,
                &mut rng,
            );
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            match revmatch::match_i_p_randomized(&c1, &c2, 1e-3, &mut rng) {
                Ok(pi) => assert_eq!(&pi, inst.witness.pi_y()),
                Err(MatchError::RandomizedFailure { .. }) => failures += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        println!("  n={n:<3} failures: {failures}/{runs} (budget eps=1e-3)");
    }
}
