//! Regenerates the **§5 hardness experiments** (Fig. 5, Theorems 2–3, and
//! the Valiant–Vazirani machinery of ref \[17\]).
//!
//! Subcommands:
//!
//! * `nn` — UNIQUE-SAT → N-N round trips over planted instances: build
//!   the 8m+4-gate `C1` and single-gate `C2`, solve with DPLL, transport
//!   to a ν-witness, verify, extract the assignment back;
//! * `pp` — the dual-rail UNIQUE-SAT → P-P version;
//! * `vv` — SAT → UNIQUE-SAT isolation success rates;
//! * (no argument) — run all three.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin hardness [nn|pp|vv]`

use std::time::Instant;

use revmatch::{check_witness, NnReduction, PpReduction, VerifyMode};
use revmatch_bench::harness_rng;
use revmatch_sat::{isolate_unique, planted_unique, random_ksat, Solver};

fn run_nn() {
    let mut rng = harness_rng();
    println!("== Theorem 2: UNIQUE-SAT -> N-N ==");
    println!(
        "{:>6} {:>6} {:>7} {:>9} {:>9} {:>10} {:>8}",
        "vars", "m", "lines", "C1 gates", "verify", "extract", "time"
    );
    for n in [2usize, 3, 4, 6, 8, 10] {
        let planted = planted_unique(n, 3.min(n), &mut rng).expect("generator converges");
        let start = Instant::now();
        let red = NnReduction::new(planted.cnf.clone()).expect("well-formed CNF");
        let witness = red.solve_via_sat().expect("satisfiable by construction");
        let elapsed = start.elapsed();
        // Verify: exhaustive when the circuit is small, sampled otherwise.
        let mode = if red.layout.width() <= 18 {
            VerifyMode::Exhaustive
        } else {
            VerifyMode::Sampled(4096)
        };
        let ok = check_witness(&red.c1, &red.c2, &witness, mode, &mut rng).expect("widths agree");
        let extracted = red.assignment_from_witness(&witness);
        let round_trip = extracted == planted.assignment;
        println!(
            "{:>6} {:>6} {:>7} {:>9} {:>9} {:>10} {:>7.1?}",
            n,
            planted.cnf.num_clauses(),
            red.layout.width(),
            red.c1.len(),
            ok,
            round_trip,
            elapsed
        );
        assert!(ok && round_trip);
        assert_eq!(red.c1.len(), 8 * planted.cnf.num_clauses() + 4);
    }
    println!("reduction is polynomial: 8m+4 gates, verified witnesses, exact extraction\n");
}

fn run_pp() {
    let mut rng = harness_rng();
    println!("== Theorem 3: UNIQUE-SAT -> P-P (dual rail) ==");
    println!(
        "{:>6} {:>6} {:>7} {:>9} {:>9} {:>10} {:>8}",
        "vars", "m'", "lines", "C1 gates", "verify", "extract", "time"
    );
    for n in [2usize, 3, 4] {
        let planted = planted_unique(n, 2.min(n), &mut rng).expect("generator converges");
        let start = Instant::now();
        let red = PpReduction::new(planted.cnf.clone()).expect("well-formed CNF");
        let witness = red.solve_via_sat().expect("satisfiable by construction");
        let elapsed = start.elapsed();
        let mode = if red.layout.width() <= 18 {
            VerifyMode::Exhaustive
        } else {
            VerifyMode::Sampled(4096)
        };
        let ok = check_witness(&red.c1, &red.c2, &witness, mode, &mut rng).expect("widths agree");
        let extracted = red.assignment_from_witness(&witness);
        let round_trip = extracted == planted.assignment;
        println!(
            "{:>6} {:>6} {:>7} {:>9} {:>9} {:>10} {:>7.1?}",
            n,
            red.cnf_dual.num_clauses(),
            red.layout.width(),
            red.c1.len(),
            ok,
            round_trip,
            elapsed
        );
        assert!(ok && round_trip);
        assert_eq!(red.layout.width(), 4 * n + planted.cnf.num_clauses() + 2);
    }
    println!("permutation witnesses route the true rail into the positive-control region\n");
}

fn run_vv() {
    let mut rng = harness_rng();
    println!("== ref [17]: Valiant-Vazirani SAT -> UNIQUE-SAT isolation ==");
    println!(
        "{:>6} {:>8} {:>14} {:>16}",
        "vars", "clauses", "sat rate", "isolation rate"
    );
    for (n, m) in [(5usize, 6usize), (6, 10), (8, 16)] {
        let runs = 60;
        let mut sat = 0;
        let mut isolated = 0;
        for _ in 0..runs {
            let phi = random_ksat(n, m, 3, &mut rng);
            if !Solver::new(&phi).solve().is_sat() {
                continue;
            }
            sat += 1;
            let outcome = isolate_unique(&phi, &mut rng);
            if let Some(model) = outcome.model {
                assert!(phi.eval(&model), "isolated model must satisfy phi");
                isolated += 1;
            }
        }
        println!(
            "{n:>6} {m:>8} {:>13.2} {:>15.2}",
            sat as f64 / runs as f64,
            if sat > 0 {
                isolated as f64 / sat as f64
            } else {
                0.0
            }
        );
    }
    println!("each isolation sweep succeeds with Ω(1/n) probability per the VV theorem;");
    println!("recovered models always satisfy the original formula\n");
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("nn") => run_nn(),
        Some("pp") => run_pp(),
        Some("vv") => run_vv(),
        None => {
            run_nn();
            run_pp();
            run_vv();
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}; use nn, pp or vv");
            std::process::exit(2);
        }
    }
}
