//! Regenerates the **Algorithm 1 confidence bound**: the probability of
//! wrongly concluding `ν(i) = 0` after `k` all-zero swap tests is
//! `2^{-k}` per negated line; overall failure is bounded by the union.
//!
//! We sweep `k`, run Algorithm 1 on instances with a known planted `ν`,
//! and report the empirical per-run failure rate against `n⁻`·`2^{-k}`
//! (where `n⁻` is the number of negated lines, the union-bound factor).
//!
//! Run with: `cargo run --release -p revmatch-bench --bin alg1_confidence`

use revmatch::{match_n_i_quantum, Equivalence, MatcherConfig, Oracle, Side};
use revmatch_bench::harness_rng;
use revmatch_quantum::SwapTestMethod;

const RUNS: usize = 3000;
const WIDTH: usize = 4;

fn main() {
    let mut rng = harness_rng();
    println!("Algorithm 1 failure rate vs swap-test rounds k  (n = {WIDTH}, {RUNS} runs per k)\n");
    println!(
        "{:>3} {:>14} {:>18} {:>8}",
        "k", "empirical fail", "bound ~ n/2 * 2^-k", "ok"
    );
    for k in [1usize, 2, 3, 4, 6, 8, 10, 12] {
        let config = MatcherConfig {
            epsilon: 0.5f64.powi(k as i32),
            quantum_k: k,
            swap_method: SwapTestMethod::Analytic,
            quantum_backend: None,
        };
        let mut failures = 0;
        for _ in 0..RUNS {
            let inst =
                revmatch::random_instance(Equivalence::new(Side::N, Side::I), WIDTH, &mut rng);
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            let nu = match_n_i_quantum(&c1, &c2, &config, &mut rng).expect("quantum N-I");
            if nu != inst.witness.nu_x() {
                failures += 1;
            }
        }
        let empirical = failures as f64 / RUNS as f64;
        // Expected negated lines: WIDTH/2 on average (uniform mask), each
        // missed with probability 2^{-k}.
        let bound = (WIDTH as f64 / 2.0) * 0.5f64.powi(k as i32);
        let ok = empirical <= bound + 0.02;
        println!("{k:>3} {empirical:>14.4} {bound:>18.4} {ok:>8}");
    }
    println!("\nfailures halve with each extra round, as 1 - 1/2^k predicts;");
    println!("false positives (ν-bit claimed 1 when 0) never occur — identical");
    println!("states cannot make the swap test fire.");
}
