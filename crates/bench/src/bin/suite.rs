//! Benchmark-suite runner: builds a RevLib-style suite of named circuits
//! (standard gates plus synthesized arithmetic/random functions), hides
//! random transforms, and runs the full identification pipeline over the
//! all-pairs matrix — the workload a library user (e.g. a technology
//! mapper) would run.
//!
//! For every pair the spectral prefilter verdict and the identified
//! minimal class are printed; diagonal blocks (same base, transformed)
//! must identify, off-diagonal pairs must be rejected, and the prefilter
//! must never contradict a successful identification.
//!
//! A final serving stage pushes promised NP-I instances built from every
//! suite circuit through the sharded [`MatchService`] — the continuous
//! form of the same workload — and reports throughput and verification.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin suite -- \
//!   [--shards N] [--queue-capacity N]`

use revmatch::{
    check_witness, identify_equivalence, EngineJob, Equivalence, IdentifyOptions, JobTicket,
    MatchService, MatcherConfig, ServiceConfig, Side, VerifyMode,
};
use revmatch_bench::{harness_rng, service_flags, Flags, SERVICE_FLAGS};
use revmatch_circuit::{
    circuit_quantum_cost, signatures_compatible, synthesize, Circuit, Gate, SynthesisStrategy,
    TruthTable,
};

const USAGE: &str = "usage: suite [--shards N] [--queue-capacity N]";

struct Entry {
    name: &'static str,
    circuit: Circuit,
}

fn build_suite(width: usize, rng: &mut rand::rngs::StdRng) -> Vec<Entry> {
    assert!(width >= 3);
    let mut suite = Vec::new();
    // Toffoli chain.
    let mut toffoli = Circuit::new(width);
    for i in 0..width - 2 {
        toffoli.push(Gate::toffoli(i, i + 1, i + 2)).unwrap();
    }
    suite.push(Entry {
        name: "tof_chain",
        circuit: toffoli,
    });
    // Modular increment.
    let inc =
        TruthTable::from_fn(width, |x| (x + 1) & revmatch_circuit::width_mask(width)).unwrap();
    suite.push(Entry {
        name: "increment",
        circuit: synthesize(&inc, SynthesisStrategy::Bidirectional).unwrap(),
    });
    // Bit-reversal-of-index permutation (on the value space).
    let rev = TruthTable::from_fn(width, |x| {
        let mut y = 0u64;
        for i in 0..width {
            y |= ((x >> i) & 1) << (width - 1 - i);
        }
        y
    })
    .unwrap();
    suite.push(Entry {
        name: "bit_reverse",
        circuit: synthesize(&rev, SynthesisStrategy::Bidirectional).unwrap(),
    });
    // Two random functions.
    suite.push(Entry {
        name: "random_a",
        circuit: revmatch_circuit::random_function_circuit(width, rng),
    });
    suite.push(Entry {
        name: "random_b",
        circuit: revmatch_circuit::random_function_circuit(width, rng),
    });
    suite
}

fn main() {
    let flags = Flags::parse(&SERVICE_FLAGS, USAGE);
    let (shards, queue_capacity) = service_flags(&flags);
    let mut rng = harness_rng();
    let width = 4;
    let suite = build_suite(width, &mut rng);

    println!("suite: {} circuits on {width} lines", suite.len());
    for e in &suite {
        println!(
            "  {:<12} {:>4} gates, quantum cost {:>5}",
            e.name,
            e.circuit.len(),
            circuit_quantum_cost(&e.circuit)
        );
    }

    // Hide each circuit behind a random NP-NP transform — the hardest
    // class; identification may still succeed through a *smaller* class
    // when the transform degenerates, or via brute force at this width.
    let hidden: Vec<(usize, Circuit)> = suite
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let inst = revmatch::random_instance_from(
                e.circuit.clone(),
                Equivalence::new(Side::Np, Side::Np),
                &mut rng,
            );
            (i, inst.c1)
        })
        .collect();

    println!("\nall-pairs identification (rows: transformed, cols: suite bases)");
    print!("{:<14}", "");
    for e in &suite {
        print!("{:<13}", e.name);
    }
    println!();
    let mut diagonal_hits = 0;
    let mut off_diagonal_rejections = 0;
    let mut filter_agreements = 0;
    let mut cells = 0;
    for (src, transformed) in &hidden {
        print!("{:<14}", format!("T({})", suite[*src].name));
        for (col, base) in suite.iter().enumerate() {
            cells += 1;
            let filter_ok = signatures_compatible(transformed, &base.circuit).unwrap();
            let found = identify_equivalence(
                transformed,
                &base.circuit,
                &IdentifyOptions::default(),
                &mut rng,
            )
            .unwrap();
            let cell = match &found {
                Some(id) => format!("{}", id.equivalence),
                None => "-".to_owned(),
            };
            // The prefilter may only reject when identification fails.
            if !filter_ok {
                assert!(found.is_none(), "filter contradicted a match");
            }
            if found.is_some() == filter_ok || found.is_none() {
                filter_agreements += 1;
            }
            if col == *src {
                assert!(found.is_some(), "diagonal pair failed to identify");
                diagonal_hits += 1;
            } else if found.is_none() {
                off_diagonal_rejections += 1;
            }
            print!("{cell:<13}");
        }
        println!();
    }
    println!(
        "\ndiagonal identified: {diagonal_hits}/{}; off-diagonal rejected: {off_diagonal_rejections}/{}",
        suite.len(),
        cells - suite.len()
    );
    println!("prefilter consistent on {filter_agreements}/{cells} cells");
    println!("(off-diagonal matches, if any, are genuine accidental equivalences — verified)");

    // --- Serving stage: the same suite as continuous promised traffic. --
    // Each base circuit is hidden behind fresh NP-I transforms and the
    // promised pairs stream through the sharded service.
    let per_base = 8;
    let e_npi = Equivalence::new(Side::Np, Side::I);
    let mut pairs = Vec::new();
    for entry in &suite {
        for _ in 0..per_base {
            pairs.push(revmatch::random_instance_from(
                entry.circuit.clone(),
                e_npi,
                &mut rng,
            ));
        }
    }
    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(shards)
            .with_queue_capacity(queue_capacity)
            .with_matcher(MatcherConfig::with_epsilon(1e-6))
            .with_seed(0x0DAC_2024),
    );
    let start = std::time::Instant::now();
    let tickets: Vec<JobTicket> = pairs
        .iter()
        .map(|inst| service.submit_wait(EngineJob::from_instance(inst, true)))
        .collect();
    let mut verified = 0;
    for (ticket, inst) in tickets.into_iter().zip(&pairs) {
        let report = ticket.wait();
        let w = report.witness.expect("promised NP-I pair must solve");
        if check_witness(&inst.c1, &inst.c2, &w, VerifyMode::Exhaustive, &mut rng).unwrap() {
            verified += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(verified, pairs.len(), "every served witness verifies");
    println!(
        "\nserving stage: {} NP-I jobs over {shards} shard{} (lane capacity {queue_capacity}) \
         in {:.1}ms — {:.0} inst/s, {} oracle queries",
        pairs.len(),
        if shards == 1 { "" } else { "s" },
        elapsed.as_secs_f64() * 1e3,
        pairs.len() as f64 / elapsed.as_secs_f64(),
        service.metrics().oracle_queries(),
    );
    service.shutdown();
}
