//! Regenerates **Figure 1**: the domination lattice of the 16 X-Y
//! equivalences with its complexity colouring — and *verifies* it
//! empirically:
//!
//! * every Hasse edge `A → B` is checked by generating B-equivalent pairs
//!   and confirming A-matchability (witness transport / brute force);
//! * incomparability is checked by exhibiting counterexample pairs that
//!   are A-equivalent but not B-equivalent for incomparable A, B.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin figure1`

use revmatch::{
    brute_force_match, classify, hasse_dot, hasse_edges, random_instance, render_lattice,
    Equivalence,
};
use revmatch_bench::harness_rng;

const WIDTH: usize = 3;
const PAIRS_PER_EDGE: usize = 10;

fn main() {
    println!(
        "Figure 1 (reproduced): domination lattice, top to bottom\n{}",
        render_lattice()
    );

    let mut rng = harness_rng();
    let edges = hasse_edges();
    println!(
        "Hasse edges: {} (expected 32 for the product of two diamonds)\n",
        edges.len()
    );

    // --- Edge verification: B-equivalent pairs are A-matchable. -------
    let mut verified = 0;
    for edge in &edges {
        for _ in 0..PAIRS_PER_EDGE {
            let inst = random_instance(edge.to, WIDTH, &mut rng);
            // The B-witness itself conforms to A (transport)…
            assert!(
                inst.witness.conforms_to(edge.from),
                "{} witness does not conform to {}",
                edge.to,
                edge.from
            );
            // …and an A-witness exists by search, independently.
            let found = brute_force_match(&inst.c1, &inst.c2, edge.from)
                .expect("width within brute-force range");
            assert!(
                found.is_some(),
                "{}-equivalent pair not {}-matchable",
                edge.to,
                edge.from
            );
            verified += 1;
        }
    }
    println!(
        "edge checks: {verified}/{} passed (every B-equivalent pair was A-matchable)",
        edges.len() * PAIRS_PER_EDGE
    );

    // --- Strictness: each edge is strict (some A-pair is not B-matchable).
    let mut strict = 0;
    for edge in &edges {
        let mut separated = false;
        for _ in 0..40 {
            let inst = random_instance(edge.from, WIDTH, &mut rng);
            let found = brute_force_match(&inst.c1, &inst.c2, edge.to)
                .expect("width within brute-force range");
            if found.is_none() {
                separated = true;
                break;
            }
        }
        if separated {
            strict += 1;
        } else {
            println!(
                "  note: no separator sampled for {} > {}",
                edge.from, edge.to
            );
        }
    }
    println!(
        "strictness checks: {strict}/{} edges separated by a sampled counterexample",
        edges.len()
    );

    // --- Incomparability spot checks (N-N vs P-P, I-NP vs NP-I). ------
    let pairs = [
        ("N-N", "P-P"),
        ("I-NP", "NP-I"),
        ("N-I", "I-N"),
        ("P-I", "I-P"),
    ];
    for (a, b) in pairs {
        let ea: Equivalence = a.parse().unwrap();
        let eb: Equivalence = b.parse().unwrap();
        assert!(!ea.subsumes(eb) && !eb.subsumes(ea));
        let mut a_not_b = false;
        let mut b_not_a = false;
        for _ in 0..60 {
            if !a_not_b {
                let inst = random_instance(ea, WIDTH, &mut rng);
                if brute_force_match(&inst.c1, &inst.c2, eb).unwrap().is_none() {
                    a_not_b = true;
                }
            }
            if !b_not_a {
                let inst = random_instance(eb, WIDTH, &mut rng);
                if brute_force_match(&inst.c1, &inst.c2, ea).unwrap().is_none() {
                    b_not_a = true;
                }
            }
            if a_not_b && b_not_a {
                break;
            }
        }
        println!(
            "incomparable {a} / {b}: witnesses both directions = {}",
            a_not_b && b_not_a
        );
    }

    // --- Graphviz artifact (pipe into `dot -Tpdf` for the figure). -----
    println!("\nGraphviz source (fig1.dot):\n{}", hasse_dot());

    // --- Complexity colouring summary. ---------------------------------
    println!("\ncomplexity classes (paper Fig. 1 colouring):");
    for eq in Equivalence::all() {
        println!("  {:<6} {}", eq.to_string(), classify(eq));
    }
}
