//! Open-loop load generator for the serving layer.
//!
//! Drives a [`MatchService`] the way production traffic would: jobs
//! arrive on a fixed schedule (`--rate` per second) regardless of how
//! fast the service drains them — the open-loop discipline that exposes
//! real queueing behaviour. Arrivals hitting a full intake are **dropped
//! and counted** (`QueueFull`), never retried, so the rejection rate is
//! the backpressure signal.
//!
//! The traffic is a cycle over `--widths` × `--mix` promised instances,
//! pre-generated deterministically from `--seed`, fanned across the
//! `--job-mix` scenario families (colon-separated `JobSpec` kinds;
//! repeat a kind to weight it):
//!
//! * `promise` — recover the planted witness (add `--sat-verify 1` to
//!   prove each one by miter on the `--backend` solver);
//! * `identify` — feed the pair *without* its promise and walk the
//!   lattice for the minimal class (brute force off to stay
//!   polynomial);
//! * `quantum` — inverse-free N-I jobs on the quantum path
//!   (Simon-style sampling where `2n+1` simulated qubits fit, swap-test
//!   Algorithm 1 beyond);
//! * `sat` — complete white-box verdicts on the planted witness;
//! * `enumerate` — sweep the whole N-I negation-mask family of the
//!   pair on one incremental-assumption solver, counting *all*
//!   witnesses (per-shard solver-cache reuse makes repeats warm).
//!
//! At the end the generator drains the service, prints a per-kind
//! latency table (p50/p90/p99/max), steal/shard accounting, a
//! latency/throughput summary plus the full Prometheus metrics export,
//! and verifies that every accepted job completed with no failures.
//!
//! With `--trace out.json` the service records lifecycle spans
//! (`submit → queue_wait → dequeue → cache_probe → table_compile →
//! execute → report`) and the generator writes them as Chrome
//! trace-event JSON — load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev> — plus a top-K slowest-jobs table with
//! per-stage attribution. `--trace-sample N` traces every N-th job
//! (default 1 = all) to bound overhead at high rates.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin loadgen -- \
//!   --rate 500 --duration-ms 2000 --shards 4 --queue-capacity 64 \
//!   --job-mix promise:identify:quantum:sat --trace trace.json`

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use revmatch::{
    chrome_trace_json, random_instance, read_server_frame, slowest_jobs, write_client_frame,
    AdmissionConfig, ClientFrame, EngineJob, EnumerateJob, Equivalence, IdentifyJob, JobKind,
    JobSpec, MatchError, MatchService, MatcherConfig, QuantumAlgorithm, QuantumPathJob,
    SatEquivalenceJob, ServerFrame, ServiceConfig, Side, SolverBackend, Stage, SubmitOutcome,
    TraceConfig, WitnessFamily,
};
use revmatch_bench::{service_flags, Flags};
use revmatch_quantum::QuantumBackend;

use rand::SeedableRng;

const USAGE: &str = "usage: loadgen [--rate JOBS_PER_SEC] [--duration-ms MS] \
[--shards N] [--queue-capacity N] [--widths CSV] [--mix CSV_EQUIVALENCES] \
[--job-mix KIND[:KIND...]] [--seed N] [--epsilon F] [--sat-verify 0|1] \
[--backend dpll|cdcl] [--sat-opts lbd,inproc,xor|all|none] \
[--kernel scalar|sliced64|wide256-portable|wide256] \
[--quantum-backend dense|sparse|stabilizer] [--trace OUT.json] [--trace-sample N] \
[--admission 0|1] [--overload-us N] [--expensive-us N] \
[--connect HOST:PORT] [--connections N]";

const KNOWN_FLAGS: [&str; 21] = [
    "rate",
    "duration-ms",
    "shards",
    "queue-capacity",
    "widths",
    "mix",
    "job-mix",
    "seed",
    "epsilon",
    "sat-verify",
    "backend",
    "sat-opts",
    "kernel",
    "quantum-backend",
    "trace",
    "trace-sample",
    "admission",
    "overload-us",
    "expensive-us",
    "connect",
    "connections",
];

/// Prints a usage diagnostic and exits nonzero (malformed flag values
/// are user errors, not panics).
fn usage_error(message: &str) -> ! {
    eprintln!("loadgen: error: {message}\n{USAGE}");
    std::process::exit(2);
}

/// Pre-generated jobs per (width, equivalence, kind-entry) cell of the
/// mix. Every `--job-mix` entry gets its own cells, so repeated kinds
/// weight the traffic and no requested kind can be starved.
const POOL_PER_CELL: usize = 4;

/// Builds one job of `kind` from a fresh planted instance.
fn job_for_kind(
    kind: JobKind,
    width: usize,
    equivalence: Equivalence,
    sat_verify: bool,
    rng: &mut rand::rngs::StdRng,
) -> JobSpec {
    match kind {
        JobKind::Promise => {
            let inst = random_instance(equivalence, width, rng);
            let job = EngineJob::from_instance(&inst, true);
            JobSpec::Promise(if sat_verify {
                job.with_sat_verification()
            } else {
                job
            })
        }
        // The walk gets the pair without its promise; brute force stays
        // off so hard-class probing cannot stall a shard.
        JobKind::Identify => {
            let inst = random_instance(equivalence, width, rng);
            JobSpec::Identify(IdentifyJob::new(inst.c1, inst.c2).without_brute_force())
        }
        // Quantum-path jobs run the classically-exponential N-I case:
        // Simon-style sampling while the *planned* simulation backend
        // (forced via --quantum-backend / REVMATCH_QBACKEND, stabilizer
        // under auto policy) can hold the round, swap-test Algorithm 1
        // beyond — so a forced narrow backend degrades to the wider
        // algorithm instead of submitting jobs that can only fail.
        JobKind::Quantum => {
            let e = Equivalence::new(Side::N, Side::I);
            // Wide instances (past the dense-table ceiling) come from a
            // bounded MCT cascade: a synthesized uniform function would
            // make both pool generation and oracle evaluation quadratic
            // in the truth table.
            let inst = if 2 * width < revmatch_quantum::MAX_QUBITS {
                random_instance(e, width, rng)
            } else {
                revmatch::random_wide_instance(e, width, 4 * width, rng)
            };
            let simon_cap = match QuantumBackend::forced() {
                Some(QuantumBackend::Dense) => (revmatch_quantum::MAX_QUBITS - 1) / 2,
                Some(QuantumBackend::Sparse) => {
                    revmatch_quantum::SPARSE_MAX_ENTRIES.ilog2() as usize - 1
                }
                // Auto resolves Simon to the stabilizer tableau; 31 keeps
                // the sampled x₀ comfortably inside a u64 word.
                None | Some(QuantumBackend::Stabilizer) => 31,
            };
            let algorithm = if width <= simon_cap {
                QuantumAlgorithm::Simon
            } else {
                QuantumAlgorithm::SwapTest
            };
            JobSpec::QuantumPath(QuantumPathJob {
                equivalence: e,
                c1: inst.c1,
                c2: inst.c2,
                algorithm,
            })
        }
        JobKind::Sat => {
            let inst = random_instance(equivalence, width, rng);
            JobSpec::SatEquivalence(SatEquivalenceJob {
                c1: inst.c1,
                c2: inst.c2,
                witness: Some(inst.witness),
            })
        }
        // Enumeration jobs sweep the full N-I mask family of a planted
        // pair on the shared incremental solver (2^width candidates per
        // job; the cyclic pool makes the per-shard solver cache hit).
        JobKind::Enumerate => {
            let e = Equivalence::new(Side::N, Side::I);
            let inst = random_instance(e, width, rng);
            JobSpec::Enumerate(EnumerateJob::new(
                inst.c1,
                inst.c2,
                WitnessFamily::InputNegation,
            ))
        }
    }
}

fn build_pool(
    widths: &[usize],
    mix: &[Equivalence],
    kinds: &[JobKind],
    seed: u64,
    sat_verify: bool,
) -> Vec<JobSpec> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pool = Vec::new();
    for &w in widths {
        for &e in mix {
            for &kind in kinds {
                for _ in 0..POOL_PER_CELL {
                    pool.push(job_for_kind(kind, w, e, sat_verify, &mut rng));
                }
            }
        }
    }
    pool
}

fn main() {
    let flags = Flags::parse(&KNOWN_FLAGS, USAGE);
    let rate = flags.get_f64("rate", 500.0);
    if rate.is_nan() || rate <= 0.0 {
        usage_error("--rate must be positive");
    }
    let duration = Duration::from_millis(flags.get_u64("duration-ms", 2000));
    let (shards, capacity) = service_flags(&flags);
    let seed = flags.get_u64("seed", 0x10AD);
    let epsilon = flags.get_f64("epsilon", 1e-6);
    let sat_verify = flags.get_u64("sat-verify", 0) != 0;
    let backend: SolverBackend = flags
        .get_str("backend", "cdcl")
        .parse()
        .unwrap_or_else(|_| usage_error("--backend: expected dpll or cdcl"));
    // --trace OUT.json turns span recording on; --trace-sample N keeps
    // every N-th job (1 = all). Without --trace the pin is Off, which
    // also shields the overhead baseline from a stray REVMATCH_TRACE.
    let trace_path = flags.get_str("trace", "");
    let trace_sample = flags.get_u64("trace-sample", 1);
    if trace_sample == 0 {
        usage_error("--trace-sample must be positive");
    }
    let trace_config = if trace_path.is_empty() {
        TraceConfig::off()
    } else {
        TraceConfig::sampled(trace_sample)
    };
    // Malformed, zero, or empty entries in the traffic-shape flags are
    // hard usage errors: a silently-skipped width or kind would change
    // the offered mix without any signal.
    let widths: Vec<usize> = flags
        .get_str("widths", "5,6")
        .split(',')
        .map(|s| {
            let w: usize = s
                .trim()
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("--widths: bad width {:?}", s.trim())));
            if w == 0 {
                usage_error("--widths: width 0 carries no jobs");
            }
            w
        })
        .collect();
    if widths.is_empty() {
        usage_error("--widths: at least one width is required");
    }
    let mix: Vec<Equivalence> = flags
        .get_str("mix", "NP-I,I-P,P-N")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("--mix: bad equivalence {:?}", s.trim())))
        })
        .collect();
    if mix.is_empty() {
        usage_error("--mix: at least one equivalence is required");
    }
    let kinds: Vec<JobKind> = flags
        .get_str("job-mix", "promise")
        .split(':')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                usage_error(&format!(
                    "--job-mix: unknown kind {:?} (expected promise|identify|quantum|sat|enumerate)",
                    s.trim()
                ))
            })
        })
        .collect();
    if kinds.is_empty() {
        usage_error("--job-mix: at least one kind is required");
    }
    let admission = flags.get_u64("admission", 0) != 0;
    let overload_us = flags.get_u64("overload-us", 0);
    let expensive_us = flags.get_u64("expensive-us", 0);
    if !admission && (overload_us != 0 || expensive_us != 0) {
        usage_error("--overload-us/--expensive-us require --admission 1");
    }
    let connect = flags.get_str("connect", "");
    let connections = flags.get_u64("connections", 4) as usize;
    if connections == 0 {
        usage_error("--connections must be at least 1");
    }
    // SAT feature forcing: same shape as --kernel. The override feeds
    // ServiceConfig's default (SatOptions::active), so every
    // worker-cached CDCL solver runs with the requested feature set.
    let sat_opts = flags.get_str("sat-opts", "");
    if !sat_opts.is_empty() {
        revmatch_sat::set_sat_opts_override(Some(
            sat_opts.parse().unwrap_or_else(|_| {
                usage_error("--sat-opts: expected lbd,inproc,xor, all or none")
            }),
        ));
    }
    println!("sat opts: {}", revmatch_sat::active_sat_opts_label());
    // Kernel forcing: a process-wide override every oracle walk and
    // table compile in the service then dispatches through.
    let kernel = flags.get_str("kernel", "");
    if !kernel.is_empty() {
        revmatch_circuit::set_kernel_override(Some(kernel.parse().unwrap_or_else(|_| {
            usage_error("--kernel: expected scalar|sliced64|wide256-portable|wide256")
        })));
    }
    println!("oracle kernel: {}", revmatch_circuit::active_kernel_name());
    // Quantum-backend forcing: same shape as --kernel. Unforced, the
    // per-algorithm auto policy applies (stabilizer for Simon, sparse
    // for swap tests) and the summary line reads "auto".
    let qbackend = flags.get_str("quantum-backend", "");
    if !qbackend.is_empty() {
        revmatch_quantum::set_quantum_backend_override(Some(qbackend.parse().unwrap_or_else(
            |_| usage_error("--quantum-backend: expected dense|sparse|stabilizer"),
        )));
    }
    println!(
        "quantum backend: {}",
        revmatch_quantum::active_quantum_backend_name()
    );

    let pool = build_pool(&widths, &mix, &kinds, seed, sat_verify);
    println!(
        "loadgen: {rate} jobs/s for {:?} over {} shards (lane capacity {capacity}); \
         pool of {} jobs ({:?} × {:?} × [{}]){}",
        duration,
        shards,
        pool.len(),
        widths,
        mix.iter().map(ToString::to_string).collect::<Vec<_>>(),
        kinds
            .iter()
            .map(|k| k.as_str())
            .collect::<Vec<_>>()
            .join(":"),
        if sat_verify {
            format!("; promise jobs SAT-verified on {backend}")
        } else {
            String::new()
        },
    );

    // Client mode: same open-loop discipline, but the jobs travel the
    // wire to a running revmatch-server instead of an in-process
    // service.
    if !connect.is_empty() {
        run_connect_mode(&connect, connections, rate, duration, &pool);
        return;
    }

    let mut service_config = ServiceConfig::default()
        .with_shards(shards)
        .with_queue_capacity(capacity)
        .with_matcher(MatcherConfig::with_epsilon(epsilon))
        .with_solver_backend(backend)
        .with_seed(seed)
        .with_trace(trace_config);
    if admission {
        let mut a = AdmissionConfig::default();
        if overload_us != 0 {
            a = a.with_overload_us(overload_us);
        }
        if expensive_us != 0 {
            a = a.with_expensive_us(expensive_us);
        }
        service_config = service_config.with_admission(a);
    }
    let service = MatchService::start(service_config);

    // Open loop: arrival i is due at start + i/rate, slept to — never
    // gated on service progress.
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut next_arrival = start;
    let mut offered = 0u64;
    while start.elapsed() < duration {
        let now = Instant::now();
        if now < next_arrival {
            std::thread::sleep(next_arrival - now);
        }
        next_arrival += interval;
        let job = pool[offered as usize % pool.len()].clone();
        offered += 1;
        match service.submit(job) {
            SubmitOutcome::Enqueued(ticket) => drop(ticket), // streamed elsewhere
            SubmitOutcome::QueueFull(_) => {}                // open loop: drop it
            SubmitOutcome::Shed(_) => {}                     // admission shed it; counted below
        }
    }
    let offered_elapsed = start.elapsed();
    service.drain();
    let drained_elapsed = start.elapsed();

    let m = service.metrics();
    let accepted = m.jobs_submitted();
    let rejected = m.jobs_rejected();
    let shed = m.jobs_shed();
    let completed = m.jobs_completed();
    assert_eq!(
        offered,
        accepted + rejected + shed,
        "every arrival is accounted"
    );
    assert_eq!(completed, accepted, "drain completed every accepted job");
    assert_eq!(
        m.jobs_failed(),
        0,
        "planted instances must all solve (and no witness may be refuted)"
    );
    let mut by_kind = String::new();
    for kind in JobKind::ALL {
        let done = m.jobs_completed_of(kind);
        if kinds.contains(&kind) {
            assert!(
                done > 0 || completed == 0,
                "requested kind {kind} never completed a job"
            );
        }
        if done > 0 {
            by_kind.push_str(&format!(" {kind}={done}"));
        }
    }
    println!("per-kind completions:{by_kind}");
    if kinds.contains(&JobKind::Quantum) {
        let mut by_backend = String::new();
        for backend in QuantumBackend::ALL {
            let dispatched = m.quantum_jobs_of_backend(backend);
            if dispatched > 0 {
                by_backend.push_str(&format!(" {backend}={dispatched}"));
            }
        }
        println!(
            "quantum dispatch [{}]:{by_backend}",
            revmatch_quantum::active_quantum_backend_name()
        );
    }
    if kinds.contains(&JobKind::Enumerate) {
        let done = m.jobs_completed_of(JobKind::Enumerate);
        assert!(
            done == 0 || m.enumerated_witnesses() >= done,
            "every planted enumeration job finds at least its planted witness"
        );
        println!(
            "enumerate: {} jobs found {} family witnesses | {} solver cache hits",
            done,
            m.enumerated_witnesses(),
            m.solver_cache_hits(),
        );
    }
    if sat_verify {
        assert_eq!(
            m.jobs_sat_verified(),
            m.jobs_completed_of(JobKind::Promise) + m.jobs_completed_of(JobKind::Sat),
            "every promise job (and sat job) must carry a SAT verdict"
        );
        println!(
            "sat-verify [{backend}]: {} verdicts ({} unknown) | caches: {} solver hits, {} table hits",
            m.jobs_sat_verified(),
            m.sat_unknown(),
            m.solver_cache_hits(),
            m.table_cache_hits(),
        );
    }

    // SAT-core introspection: whenever a CDCL solver ran (verification,
    // direct sat jobs, or enumeration sweeps), report the feature set
    // and what the options did. Mirrors the revmatch_sat_* metrics.
    if m.jobs_sat_verified() > 0 || m.jobs_completed_of(JobKind::Enumerate) > 0 {
        println!(
            "sat core [{}]: glue kept {} | learned db {} | xors extracted {} | \
             inprocess {:.2}ms",
            revmatch_sat::active_sat_opts_label(),
            m.sat_glue_kept(),
            m.sat_learned_db_size(),
            m.sat_xors_extracted(),
            m.sat_inprocess_micros() as f64 / 1000.0,
        );
    }

    let p = |q: f64| match m.latency().quantile_upper_bound(q) {
        Some(us) => format!("≤{:.1}ms", us as f64 / 1000.0),
        None => "n/a".to_owned(),
    };
    println!(
        "\noffered {offered} ({:.0}/s) | accepted {accepted} | rejected {rejected} \
         ({:.1}% backpressure) | shed {shed}",
        offered as f64 / offered_elapsed.as_secs_f64(),
        100.0 * rejected as f64 / offered as f64,
    );
    if admission {
        println!(
            "admission: shed {} | requeued {} | backlog {}µs at drain",
            m.jobs_shed(),
            m.jobs_requeued(),
            service.admission_backlog_us(),
        );
    }
    // Machine-readable summary for CI smokes: one RESULT line, one
    // KINDLAT line per requested kind (quantiles in µs, bucket upper
    // bounds).
    println!(
        "RESULT mode=local offered={offered} accepted={accepted} rejected={rejected} \
         shed={shed} requeued={} completed={completed} throughput_jps={:.1}",
        m.jobs_requeued(),
        completed as f64 / drained_elapsed.as_secs_f64(),
    );
    for kind in JobKind::ALL {
        let h = m.latency_of(kind);
        if let Some(q) = h.summary(&[0.5, 0.99]) {
            println!(
                "KINDLAT kind={} count={} p50_us={} p99_us={} max_us={}",
                kind.as_str(),
                h.count(),
                q[0],
                q[1],
                h.max(),
            );
        }
    }
    println!(
        "completed {completed} in {:.2}s ({:.0}/s) | {} oracle queries | \
         latency mean {:.1}ms p50 {} p99 {}",
        drained_elapsed.as_secs_f64(),
        completed as f64 / drained_elapsed.as_secs_f64(),
        m.oracle_queries(),
        m.latency().sum() as f64 / m.latency().count().max(1) as f64 / 1000.0,
        p(0.50),
        p(0.99),
    );
    // Warm-up cost: cold dense-table compiles this run (cache misses
    // that built a table), on the kernel reported above.
    let tc = m.table_compile();
    let tc_p99 = match tc.quantile_upper_bound(0.99) {
        Some(us) => format!("≤{us}µs"),
        None => "n/a".to_owned(),
    };
    println!(
        "table compiles: {} cold, {:.2}ms total, p99 {tc_p99} | {} table cache hits",
        tc.count(),
        tc.sum() as f64 / 1000.0,
        m.table_cache_hits(),
    );

    // Per-kind accept→completion latency from the kind-labelled
    // histograms: bucket upper bounds for the quantiles (capped at the
    // observed max), the max exact.
    println!("\nper-kind latency (accept→completion):");
    println!(
        "  {:<10} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "kind", "count", "p50", "p90", "p99", "max"
    );
    for kind in JobKind::ALL {
        let h = m.latency_of(kind);
        let Some(q) = h.summary(&[0.5, 0.9, 0.99]) else {
            continue;
        };
        let ms = |us: u64| format!("{:.2}ms", us as f64 / 1000.0);
        println!(
            "  {:<10} {:>7} {:>10} {:>10} {:>10} {:>10}",
            kind.as_str(),
            h.count(),
            format!("≤{}", ms(q[0])),
            format!("≤{}", ms(q[1])),
            format!("≤{}", ms(q[2])),
            ms(h.max()),
        );
    }

    // Shard-level execution accounting: jobs each worker ran, how many
    // it stole from other lanes (and lost to thieves), and the split of
    // its wall time between executing and waiting for work.
    println!("\nper-shard execution:");
    println!(
        "  {:<6} {:>7} {:>7} {:>7} {:>10} {:>10}",
        "shard", "jobs", "stole", "lost", "busy", "idle"
    );
    let mut steals_total = 0u64;
    for s in 0..m.shards() {
        steals_total += m.shard_steals(s);
        println!(
            "  {:<6} {:>7} {:>7} {:>7} {:>9.2}s {:>9.2}s",
            s,
            m.shard_jobs_executed(s),
            m.shard_steals(s),
            m.shard_stolen_from(s),
            m.shard_busy_micros(s) as f64 / 1e6,
            m.shard_idle_micros(s) as f64 / 1e6,
        );
    }
    println!("  steals total: {steals_total}");

    // Trace drain: write the Chrome trace-event JSON and attribute the
    // slowest traced jobs stage by stage.
    if let Some(tracer) = service.tracer() {
        let spans = service.trace_spans();
        let json = chrome_trace_json(&spans, m.shards());
        std::fs::write(&trace_path, &json).expect("--trace: cannot write trace file");
        println!(
            "\ntrace: {} spans ({} overwritten in ring) → {trace_path} \
             [sample 1/{}; load in chrome://tracing or ui.perfetto.dev]",
            spans.len(),
            tracer.dropped(),
            tracer.sample(),
        );
        let worst = slowest_jobs(&spans, 5);
        if !worst.is_empty() {
            print!(
                "top {} slowest traced jobs:\n  {:<8} {:<10} {:>10}",
                worst.len(),
                "job",
                "kind",
                "total"
            );
            for stage in Stage::ALL {
                if stage != Stage::Submit {
                    print!(" {:>13}", stage.as_str());
                }
            }
            println!();
            for b in &worst {
                print!(
                    "  {:<8} {:<10} {:>9.2}ms",
                    b.job,
                    b.kind.as_str(),
                    b.total_us as f64 / 1000.0
                );
                for stage in Stage::ALL {
                    if stage != Stage::Submit {
                        print!(" {:>11.2}ms", b.stage(stage) as f64 / 1000.0);
                    }
                }
                println!();
            }
        }
    }

    println!("\n--- metrics export ---");
    print!("{}", service.metrics_text());
    service.shutdown();
}

/// One completed wire round-trip, as seen by a connection's reader.
struct WireReply {
    client_id: u64,
    shed: bool,
    failed: bool,
    received_at: Instant,
}

/// What one connection observed end to end.
struct ConnOutcome {
    offered: u64,
    replies: Vec<WireReply>,
    sent_at: Vec<Instant>,
    kinds: Vec<JobKind>,
    metrics_text: Option<String>,
}

/// Drives a remote `revmatch-server` over `--connections` sockets with
/// the same open-loop schedule as in-process mode: arrival `i` is due at
/// `start + i/rate` and goes out on connection `i % connections`. Every
/// submit gets exactly one report back (admission sheds resolve to an
/// `Err(Overloaded)` report), so `offered == completed + shed` holds by
/// protocol; the function asserts it and prints the same RESULT/KINDLAT
/// machine lines as local mode.
fn run_connect_mode(
    addr: &str,
    connections: usize,
    rate: f64,
    duration: Duration,
    pool: &[JobSpec],
) {
    println!("loadgen: connecting {connections} streams to {addr}");
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut workers = Vec::new();
    for conn in 0..connections {
        let addr = addr.to_string();
        let pool: Vec<JobSpec> = pool.to_vec();
        workers.push(std::thread::spawn(move || -> ConnOutcome {
            let stream = TcpStream::connect(&addr)
                .unwrap_or_else(|e| usage_error(&format!("--connect {addr}: {e}")));
            stream.set_nodelay(true).ok();
            let read_half = stream.try_clone().expect("clone stream");
            let reader_addr = addr.clone();
            let reader = std::thread::spawn(move || {
                let mut input = BufReader::new(read_half);
                let mut replies = Vec::new();
                let mut metrics_text = None;
                loop {
                    match read_server_frame(&mut input) {
                        Ok(Some(ServerFrame::Report { client_id, report })) => {
                            replies.push(WireReply {
                                client_id,
                                shed: matches!(report.witness, Err(MatchError::Overloaded)),
                                failed: report.witness.is_err()
                                    && !matches!(report.witness, Err(MatchError::Overloaded)),
                                received_at: Instant::now(),
                            });
                        }
                        Ok(Some(ServerFrame::MetricsText(text))) => metrics_text = Some(text),
                        Ok(None) => break,
                        Err(e) => {
                            eprintln!("loadgen: {reader_addr}: protocol error: {e}");
                            break;
                        }
                    }
                }
                (replies, metrics_text)
            });

            // Open loop over this connection's share of the schedule:
            // arrival i goes out at start + i*interval for
            // i ≡ conn (mod connections).
            let mut out = BufWriter::new(stream.try_clone().expect("clone stream"));
            let mut offered = 0u64;
            let mut sent_at = Vec::new();
            let mut kinds = Vec::new();
            let mut i = conn as u64;
            loop {
                let due = start + interval.mul_f64(i as f64);
                let now = Instant::now();
                if now.duration_since(start) >= duration {
                    break;
                }
                if due > now {
                    std::thread::sleep(due - now);
                }
                let job = pool[i as usize % pool.len()].clone();
                kinds.push(job.kind());
                let frame = ClientFrame::Submit {
                    client_id: offered,
                    seed: None,
                    job,
                };
                sent_at.push(Instant::now());
                if write_client_frame(&mut out, &frame)
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    eprintln!("loadgen: {addr}: write failed, stopping this connection");
                    break;
                }
                offered += 1;
                i += connections as u64;
            }
            // Connection 0 also grabs one metrics snapshot before the
            // half-close, so the run can assert on server counters.
            if conn == 0 {
                let _ = write_client_frame(&mut out, &ClientFrame::MetricsRequest)
                    .and_then(|()| out.flush());
            }
            // Half-close: the server reader sees EOF, finishes every
            // accepted job, flushes the reports, then closes its side.
            let _ = out.flush();
            drop(out);
            let _ = stream.shutdown(Shutdown::Write);
            let (replies, metrics_text) = reader.join().expect("reader thread");
            ConnOutcome {
                offered,
                replies,
                sent_at,
                kinds,
                metrics_text,
            }
        }));
    }

    let outcomes: Vec<ConnOutcome> = workers
        .into_iter()
        .map(|w| w.join().expect("connection thread"))
        .collect();
    let elapsed = start.elapsed();

    let offered: u64 = outcomes.iter().map(|o| o.offered).sum();
    let replies: u64 = outcomes.iter().map(|o| o.replies.len() as u64).sum();
    let shed: u64 = outcomes
        .iter()
        .map(|o| o.replies.iter().filter(|r| r.shed).count() as u64)
        .sum();
    let failed: u64 = outcomes
        .iter()
        .map(|o| o.replies.iter().filter(|r| r.failed).count() as u64)
        .sum();
    let completed = replies - shed;
    assert_eq!(
        offered, replies,
        "every submitted job must come back as exactly one report"
    );

    // Client-observed submit→report latency per kind (exact, not
    // bucketed: the client holds both timestamps).
    let mut latencies: HashMap<JobKind, Vec<u64>> = HashMap::new();
    for o in &outcomes {
        for r in &o.replies {
            if r.shed {
                continue;
            }
            let idx = r.client_id as usize;
            let us = r
                .received_at
                .saturating_duration_since(o.sent_at[idx])
                .as_micros() as u64;
            latencies.entry(o.kinds[idx]).or_default().push(us);
        }
    }

    println!(
        "\noffered {offered} over {connections} connections in {:.2}s | \
         completed {completed} | shed {shed} | failed {failed}",
        elapsed.as_secs_f64(),
    );
    println!(
        "RESULT mode=connect offered={offered} completed={completed} shed={shed} \
         failed={failed} throughput_jps={:.1}",
        completed as f64 / elapsed.as_secs_f64(),
    );
    let quantile = |sorted: &[u64], q: f64| -> u64 {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    for kind in JobKind::ALL {
        let Some(samples) = latencies.get_mut(&kind) else {
            continue;
        };
        samples.sort_unstable();
        println!(
            "KINDLAT kind={} count={} p50_us={} p99_us={} max_us={}",
            kind.as_str(),
            samples.len(),
            quantile(samples, 0.5),
            quantile(samples, 0.99),
            samples[samples.len() - 1],
        );
    }
    if let Some(text) = outcomes.iter().find_map(|o| o.metrics_text.as_deref()) {
        println!("\n--- server metrics (admission & totals) ---");
        for line in text.lines().filter(|l| {
            !l.starts_with('#')
                && (l.contains("revmatch_admission")
                    || l.contains("revmatch_jobs_submitted_total")
                    || l.contains("revmatch_jobs_completed_total")
                    || l.contains("revmatch_rebalance")
                    || l.contains("revmatch_workers_lost_total"))
        }) {
            println!("{line}");
        }
    }
}
