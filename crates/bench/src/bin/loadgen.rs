//! Open-loop load generator for the serving layer.
//!
//! Drives a [`MatchService`] the way production traffic would: jobs
//! arrive on a fixed schedule (`--rate` per second) regardless of how
//! fast the service drains them — the open-loop discipline that exposes
//! real queueing behaviour. Arrivals hitting a full intake are **dropped
//! and counted** (`QueueFull`), never retried, so the rejection rate is
//! the backpressure signal.
//!
//! The job mix cycles through `--widths` × `--mix` promised instances,
//! pre-generated deterministically from `--seed`. With `--sat-verify 1`
//! every recovered witness is additionally proven by a SAT miter on the
//! `--backend` solver (`cdcl` default — repeated pool jobs then hit the
//! per-shard solver cache; `dpll` for differential runs). At the end the
//! generator drains the service, prints a latency/throughput summary and
//! the full Prometheus metrics export, and verifies that every accepted
//! job completed (and that no SAT verification refuted a witness).
//!
//! Run with: `cargo run --release -p revmatch-bench --bin loadgen -- \
//!   --rate 500 --duration-ms 2000 --shards 4 --queue-capacity 64 \
//!   --sat-verify 1`

use std::time::{Duration, Instant};

use revmatch::{
    random_instance, EngineJob, Equivalence, MatchService, MatcherConfig, ServiceConfig,
    SolverBackend, SubmitOutcome,
};
use revmatch_bench::{service_flags, Flags};

use rand::SeedableRng;

const USAGE: &str = "usage: loadgen [--rate JOBS_PER_SEC] [--duration-ms MS] \
[--shards N] [--queue-capacity N] [--widths CSV] [--mix CSV_EQUIVALENCES] \
[--seed N] [--epsilon F] [--sat-verify 0|1] [--backend dpll|cdcl]";

const KNOWN_FLAGS: [&str; 10] = [
    "rate",
    "duration-ms",
    "shards",
    "queue-capacity",
    "widths",
    "mix",
    "seed",
    "epsilon",
    "sat-verify",
    "backend",
];

/// Pre-generated jobs per (width, equivalence) cell of the mix.
const POOL_PER_CELL: usize = 4;

fn build_pool(
    widths: &[usize],
    mix: &[Equivalence],
    seed: u64,
    sat_verify: bool,
) -> Vec<EngineJob> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pool = Vec::new();
    for &w in widths {
        for &e in mix {
            for _ in 0..POOL_PER_CELL {
                let inst = random_instance(e, w, &mut rng);
                let job = EngineJob::from_instance(&inst, true);
                pool.push(if sat_verify {
                    job.with_sat_verification()
                } else {
                    job
                });
            }
        }
    }
    pool
}

fn main() {
    let flags = Flags::parse(&KNOWN_FLAGS, USAGE);
    let rate = flags.get_f64("rate", 500.0);
    assert!(rate > 0.0, "--rate must be positive");
    let duration = Duration::from_millis(flags.get_u64("duration-ms", 2000));
    let (shards, capacity) = service_flags(&flags);
    let seed = flags.get_u64("seed", 0x10AD);
    let epsilon = flags.get_f64("epsilon", 1e-6);
    let sat_verify = flags.get_u64("sat-verify", 0) != 0;
    let backend: SolverBackend = flags
        .get_str("backend", "cdcl")
        .parse()
        .expect("--backend: expected dpll or cdcl");
    let widths: Vec<usize> = flags
        .get_str("widths", "5,6")
        .split(',')
        .map(|s| s.trim().parse().expect("--widths: bad width"))
        .collect();
    let mix: Vec<Equivalence> = flags
        .get_str("mix", "NP-I,I-P,P-N")
        .split(',')
        .map(|s| s.trim().parse().expect("--mix: bad equivalence"))
        .collect();

    let pool = build_pool(&widths, &mix, seed, sat_verify);
    println!(
        "loadgen: {rate} jobs/s for {:?} over {} shards (lane capacity {capacity}); \
         pool of {} jobs ({:?} × {:?}){}",
        duration,
        shards,
        pool.len(),
        widths,
        mix.iter().map(ToString::to_string).collect::<Vec<_>>(),
        if sat_verify {
            format!("; SAT-verified on {backend}")
        } else {
            String::new()
        },
    );

    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(shards)
            .with_queue_capacity(capacity)
            .with_matcher(MatcherConfig::with_epsilon(epsilon))
            .with_solver_backend(backend)
            .with_seed(seed),
    );

    // Open loop: arrival i is due at start + i/rate, slept to — never
    // gated on service progress.
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut next_arrival = start;
    let mut offered = 0u64;
    while start.elapsed() < duration {
        let now = Instant::now();
        if now < next_arrival {
            std::thread::sleep(next_arrival - now);
        }
        next_arrival += interval;
        let job = pool[offered as usize % pool.len()].clone();
        offered += 1;
        match service.submit(job) {
            SubmitOutcome::Enqueued(ticket) => drop(ticket), // streamed elsewhere
            SubmitOutcome::QueueFull(_) => {}                // open loop: drop it
        }
    }
    let offered_elapsed = start.elapsed();
    service.drain();
    let drained_elapsed = start.elapsed();

    let m = service.metrics();
    let accepted = m.jobs_submitted();
    let rejected = m.jobs_rejected();
    let completed = m.jobs_completed();
    assert_eq!(offered, accepted + rejected, "every arrival is accounted");
    assert_eq!(completed, accepted, "drain completed every accepted job");
    assert_eq!(
        m.jobs_failed(),
        0,
        "promised instances must all solve (and no witness may be refuted)"
    );
    if sat_verify {
        assert_eq!(
            m.jobs_sat_verified(),
            completed,
            "every completed job must carry a SAT verdict"
        );
        println!(
            "sat-verify [{backend}]: {} verdicts ({} unknown) | caches: {} solver hits, {} table hits",
            m.jobs_sat_verified(),
            m.sat_unknown(),
            m.solver_cache_hits(),
            m.table_cache_hits(),
        );
    }

    let p = |q: f64| match m.latency().quantile_upper_bound(q) {
        Some(u64::MAX) => "overflow".to_owned(),
        Some(us) => format!("≤{:.1}ms", us as f64 / 1000.0),
        None => "n/a".to_owned(),
    };
    println!(
        "\noffered {offered} ({:.0}/s) | accepted {accepted} | rejected {rejected} \
         ({:.1}% backpressure)",
        offered as f64 / offered_elapsed.as_secs_f64(),
        100.0 * rejected as f64 / offered as f64,
    );
    println!(
        "completed {completed} in {:.2}s ({:.0}/s) | {} oracle queries | \
         latency mean {:.1}ms p50 {} p99 {}",
        drained_elapsed.as_secs_f64(),
        completed as f64 / drained_elapsed.as_secs_f64(),
        m.oracle_queries(),
        m.latency().sum() as f64 / m.latency().count().max(1) as f64 / 1000.0,
        p(0.50),
        p(0.99),
    );

    println!("\n--- metrics export ---");
    print!("{}", service.metrics_text());
    service.shutdown();
}
