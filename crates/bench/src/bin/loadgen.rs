//! Open-loop load generator for the serving layer.
//!
//! Drives a [`MatchService`] the way production traffic would: jobs
//! arrive on a fixed schedule (`--rate` per second) regardless of how
//! fast the service drains them — the open-loop discipline that exposes
//! real queueing behaviour. Arrivals hitting a full intake are **dropped
//! and counted** (`QueueFull`), never retried, so the rejection rate is
//! the backpressure signal.
//!
//! The traffic is a cycle over `--widths` × `--mix` promised instances,
//! pre-generated deterministically from `--seed`, fanned across the
//! `--job-mix` scenario families (colon-separated `JobSpec` kinds;
//! repeat a kind to weight it):
//!
//! * `promise` — recover the planted witness (add `--sat-verify 1` to
//!   prove each one by miter on the `--backend` solver);
//! * `identify` — feed the pair *without* its promise and walk the
//!   lattice for the minimal class (brute force off to stay
//!   polynomial);
//! * `quantum` — inverse-free N-I jobs on the quantum path
//!   (Simon-style sampling where `2n+1` simulated qubits fit, swap-test
//!   Algorithm 1 beyond);
//! * `sat` — complete white-box verdicts on the planted witness;
//! * `enumerate` — sweep the whole N-I negation-mask family of the
//!   pair on one incremental-assumption solver, counting *all*
//!   witnesses (per-shard solver-cache reuse makes repeats warm).
//!
//! At the end the generator drains the service, prints a per-kind
//! latency table (p50/p90/p99/max), steal/shard accounting, a
//! latency/throughput summary plus the full Prometheus metrics export,
//! and verifies that every accepted job completed with no failures.
//!
//! With `--trace out.json` the service records lifecycle spans
//! (`submit → queue_wait → dequeue → cache_probe → table_compile →
//! execute → report`) and the generator writes them as Chrome
//! trace-event JSON — load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev> — plus a top-K slowest-jobs table with
//! per-stage attribution. `--trace-sample N` traces every N-th job
//! (default 1 = all) to bound overhead at high rates.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin loadgen -- \
//!   --rate 500 --duration-ms 2000 --shards 4 --queue-capacity 64 \
//!   --job-mix promise:identify:quantum:sat --trace trace.json`

use std::time::{Duration, Instant};

use revmatch::{
    chrome_trace_json, random_instance, slowest_jobs, EngineJob, EnumerateJob, Equivalence,
    IdentifyJob, JobKind, JobSpec, MatchService, MatcherConfig, QuantumAlgorithm, QuantumPathJob,
    SatEquivalenceJob, ServiceConfig, Side, SolverBackend, Stage, SubmitOutcome, TraceConfig,
    WitnessFamily,
};
use revmatch_bench::{service_flags, Flags};
use revmatch_quantum::QuantumBackend;

use rand::SeedableRng;

const USAGE: &str = "usage: loadgen [--rate JOBS_PER_SEC] [--duration-ms MS] \
[--shards N] [--queue-capacity N] [--widths CSV] [--mix CSV_EQUIVALENCES] \
[--job-mix KIND[:KIND...]] [--seed N] [--epsilon F] [--sat-verify 0|1] \
[--backend dpll|cdcl] [--sat-opts lbd,inproc,xor|all|none] \
[--kernel scalar|sliced64|wide256-portable|wide256] \
[--quantum-backend dense|sparse|stabilizer] [--trace OUT.json] [--trace-sample N]";

const KNOWN_FLAGS: [&str; 16] = [
    "rate",
    "duration-ms",
    "shards",
    "queue-capacity",
    "widths",
    "mix",
    "job-mix",
    "seed",
    "epsilon",
    "sat-verify",
    "backend",
    "sat-opts",
    "kernel",
    "quantum-backend",
    "trace",
    "trace-sample",
];

/// Pre-generated jobs per (width, equivalence, kind-entry) cell of the
/// mix. Every `--job-mix` entry gets its own cells, so repeated kinds
/// weight the traffic and no requested kind can be starved.
const POOL_PER_CELL: usize = 4;

/// Builds one job of `kind` from a fresh planted instance.
fn job_for_kind(
    kind: JobKind,
    width: usize,
    equivalence: Equivalence,
    sat_verify: bool,
    rng: &mut rand::rngs::StdRng,
) -> JobSpec {
    match kind {
        JobKind::Promise => {
            let inst = random_instance(equivalence, width, rng);
            let job = EngineJob::from_instance(&inst, true);
            JobSpec::Promise(if sat_verify {
                job.with_sat_verification()
            } else {
                job
            })
        }
        // The walk gets the pair without its promise; brute force stays
        // off so hard-class probing cannot stall a shard.
        JobKind::Identify => {
            let inst = random_instance(equivalence, width, rng);
            JobSpec::Identify(IdentifyJob::new(inst.c1, inst.c2).without_brute_force())
        }
        // Quantum-path jobs run the classically-exponential N-I case:
        // Simon-style sampling while the *planned* simulation backend
        // (forced via --quantum-backend / REVMATCH_QBACKEND, stabilizer
        // under auto policy) can hold the round, swap-test Algorithm 1
        // beyond — so a forced narrow backend degrades to the wider
        // algorithm instead of submitting jobs that can only fail.
        JobKind::Quantum => {
            let e = Equivalence::new(Side::N, Side::I);
            // Wide instances (past the dense-table ceiling) come from a
            // bounded MCT cascade: a synthesized uniform function would
            // make both pool generation and oracle evaluation quadratic
            // in the truth table.
            let inst = if 2 * width < revmatch_quantum::MAX_QUBITS {
                random_instance(e, width, rng)
            } else {
                revmatch::random_wide_instance(e, width, 4 * width, rng)
            };
            let simon_cap = match QuantumBackend::forced() {
                Some(QuantumBackend::Dense) => (revmatch_quantum::MAX_QUBITS - 1) / 2,
                Some(QuantumBackend::Sparse) => {
                    revmatch_quantum::SPARSE_MAX_ENTRIES.ilog2() as usize - 1
                }
                // Auto resolves Simon to the stabilizer tableau; 31 keeps
                // the sampled x₀ comfortably inside a u64 word.
                None | Some(QuantumBackend::Stabilizer) => 31,
            };
            let algorithm = if width <= simon_cap {
                QuantumAlgorithm::Simon
            } else {
                QuantumAlgorithm::SwapTest
            };
            JobSpec::QuantumPath(QuantumPathJob {
                equivalence: e,
                c1: inst.c1,
                c2: inst.c2,
                algorithm,
            })
        }
        JobKind::Sat => {
            let inst = random_instance(equivalence, width, rng);
            JobSpec::SatEquivalence(SatEquivalenceJob {
                c1: inst.c1,
                c2: inst.c2,
                witness: Some(inst.witness),
            })
        }
        // Enumeration jobs sweep the full N-I mask family of a planted
        // pair on the shared incremental solver (2^width candidates per
        // job; the cyclic pool makes the per-shard solver cache hit).
        JobKind::Enumerate => {
            let e = Equivalence::new(Side::N, Side::I);
            let inst = random_instance(e, width, rng);
            JobSpec::Enumerate(EnumerateJob::new(
                inst.c1,
                inst.c2,
                WitnessFamily::InputNegation,
            ))
        }
    }
}

fn build_pool(
    widths: &[usize],
    mix: &[Equivalence],
    kinds: &[JobKind],
    seed: u64,
    sat_verify: bool,
) -> Vec<JobSpec> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pool = Vec::new();
    for &w in widths {
        for &e in mix {
            for &kind in kinds {
                for _ in 0..POOL_PER_CELL {
                    pool.push(job_for_kind(kind, w, e, sat_verify, &mut rng));
                }
            }
        }
    }
    pool
}

fn main() {
    let flags = Flags::parse(&KNOWN_FLAGS, USAGE);
    let rate = flags.get_f64("rate", 500.0);
    assert!(rate > 0.0, "--rate must be positive");
    let duration = Duration::from_millis(flags.get_u64("duration-ms", 2000));
    let (shards, capacity) = service_flags(&flags);
    let seed = flags.get_u64("seed", 0x10AD);
    let epsilon = flags.get_f64("epsilon", 1e-6);
    let sat_verify = flags.get_u64("sat-verify", 0) != 0;
    let backend: SolverBackend = flags
        .get_str("backend", "cdcl")
        .parse()
        .expect("--backend: expected dpll or cdcl");
    // --trace OUT.json turns span recording on; --trace-sample N keeps
    // every N-th job (1 = all). Without --trace the pin is Off, which
    // also shields the overhead baseline from a stray REVMATCH_TRACE.
    let trace_path = flags.get_str("trace", "");
    let trace_sample = flags.get_u64("trace-sample", 1);
    assert!(trace_sample > 0, "--trace-sample must be positive");
    let trace_config = if trace_path.is_empty() {
        TraceConfig::off()
    } else {
        TraceConfig::sampled(trace_sample)
    };
    let widths: Vec<usize> = flags
        .get_str("widths", "5,6")
        .split(',')
        .map(|s| s.trim().parse().expect("--widths: bad width"))
        .collect();
    let mix: Vec<Equivalence> = flags
        .get_str("mix", "NP-I,I-P,P-N")
        .split(',')
        .map(|s| s.trim().parse().expect("--mix: bad equivalence"))
        .collect();
    let kinds: Vec<JobKind> = flags
        .get_str("job-mix", "promise")
        .split(':')
        .map(|s| {
            s.trim()
                .parse()
                .expect("--job-mix: expected promise|identify|quantum|sat")
        })
        .collect();
    // SAT feature forcing: same shape as --kernel. The override feeds
    // ServiceConfig's default (SatOptions::active), so every
    // worker-cached CDCL solver runs with the requested feature set.
    let sat_opts = flags.get_str("sat-opts", "");
    if !sat_opts.is_empty() {
        revmatch_sat::set_sat_opts_override(Some(
            sat_opts
                .parse()
                .expect("--sat-opts: expected lbd,inproc,xor, all or none"),
        ));
    }
    println!("sat opts: {}", revmatch_sat::active_sat_opts_label());
    // Kernel forcing: a process-wide override every oracle walk and
    // table compile in the service then dispatches through.
    let kernel = flags.get_str("kernel", "");
    if !kernel.is_empty() {
        revmatch_circuit::set_kernel_override(Some(kernel.parse().expect("--kernel")));
    }
    println!("oracle kernel: {}", revmatch_circuit::active_kernel_name());
    // Quantum-backend forcing: same shape as --kernel. Unforced, the
    // per-algorithm auto policy applies (stabilizer for Simon, sparse
    // for swap tests) and the summary line reads "auto".
    let qbackend = flags.get_str("quantum-backend", "");
    if !qbackend.is_empty() {
        revmatch_quantum::set_quantum_backend_override(Some(
            qbackend.parse().expect("--quantum-backend"),
        ));
    }
    println!(
        "quantum backend: {}",
        revmatch_quantum::active_quantum_backend_name()
    );

    let pool = build_pool(&widths, &mix, &kinds, seed, sat_verify);
    println!(
        "loadgen: {rate} jobs/s for {:?} over {} shards (lane capacity {capacity}); \
         pool of {} jobs ({:?} × {:?} × [{}]){}",
        duration,
        shards,
        pool.len(),
        widths,
        mix.iter().map(ToString::to_string).collect::<Vec<_>>(),
        kinds
            .iter()
            .map(|k| k.as_str())
            .collect::<Vec<_>>()
            .join(":"),
        if sat_verify {
            format!("; promise jobs SAT-verified on {backend}")
        } else {
            String::new()
        },
    );

    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(shards)
            .with_queue_capacity(capacity)
            .with_matcher(MatcherConfig::with_epsilon(epsilon))
            .with_solver_backend(backend)
            .with_seed(seed)
            .with_trace(trace_config),
    );

    // Open loop: arrival i is due at start + i/rate, slept to — never
    // gated on service progress.
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut next_arrival = start;
    let mut offered = 0u64;
    while start.elapsed() < duration {
        let now = Instant::now();
        if now < next_arrival {
            std::thread::sleep(next_arrival - now);
        }
        next_arrival += interval;
        let job = pool[offered as usize % pool.len()].clone();
        offered += 1;
        match service.submit(job) {
            SubmitOutcome::Enqueued(ticket) => drop(ticket), // streamed elsewhere
            SubmitOutcome::QueueFull(_) => {}                // open loop: drop it
        }
    }
    let offered_elapsed = start.elapsed();
    service.drain();
    let drained_elapsed = start.elapsed();

    let m = service.metrics();
    let accepted = m.jobs_submitted();
    let rejected = m.jobs_rejected();
    let completed = m.jobs_completed();
    assert_eq!(offered, accepted + rejected, "every arrival is accounted");
    assert_eq!(completed, accepted, "drain completed every accepted job");
    assert_eq!(
        m.jobs_failed(),
        0,
        "planted instances must all solve (and no witness may be refuted)"
    );
    let mut by_kind = String::new();
    for kind in JobKind::ALL {
        let done = m.jobs_completed_of(kind);
        if kinds.contains(&kind) {
            assert!(
                done > 0 || completed == 0,
                "requested kind {kind} never completed a job"
            );
        }
        if done > 0 {
            by_kind.push_str(&format!(" {kind}={done}"));
        }
    }
    println!("per-kind completions:{by_kind}");
    if kinds.contains(&JobKind::Quantum) {
        let mut by_backend = String::new();
        for backend in QuantumBackend::ALL {
            let dispatched = m.quantum_jobs_of_backend(backend);
            if dispatched > 0 {
                by_backend.push_str(&format!(" {backend}={dispatched}"));
            }
        }
        println!(
            "quantum dispatch [{}]:{by_backend}",
            revmatch_quantum::active_quantum_backend_name()
        );
    }
    if kinds.contains(&JobKind::Enumerate) {
        let done = m.jobs_completed_of(JobKind::Enumerate);
        assert!(
            done == 0 || m.enumerated_witnesses() >= done,
            "every planted enumeration job finds at least its planted witness"
        );
        println!(
            "enumerate: {} jobs found {} family witnesses | {} solver cache hits",
            done,
            m.enumerated_witnesses(),
            m.solver_cache_hits(),
        );
    }
    if sat_verify {
        assert_eq!(
            m.jobs_sat_verified(),
            m.jobs_completed_of(JobKind::Promise) + m.jobs_completed_of(JobKind::Sat),
            "every promise job (and sat job) must carry a SAT verdict"
        );
        println!(
            "sat-verify [{backend}]: {} verdicts ({} unknown) | caches: {} solver hits, {} table hits",
            m.jobs_sat_verified(),
            m.sat_unknown(),
            m.solver_cache_hits(),
            m.table_cache_hits(),
        );
    }

    // SAT-core introspection: whenever a CDCL solver ran (verification,
    // direct sat jobs, or enumeration sweeps), report the feature set
    // and what the options did. Mirrors the revmatch_sat_* metrics.
    if m.jobs_sat_verified() > 0 || m.jobs_completed_of(JobKind::Enumerate) > 0 {
        println!(
            "sat core [{}]: glue kept {} | learned db {} | xors extracted {} | \
             inprocess {:.2}ms",
            revmatch_sat::active_sat_opts_label(),
            m.sat_glue_kept(),
            m.sat_learned_db_size(),
            m.sat_xors_extracted(),
            m.sat_inprocess_micros() as f64 / 1000.0,
        );
    }

    let p = |q: f64| match m.latency().quantile_upper_bound(q) {
        Some(us) => format!("≤{:.1}ms", us as f64 / 1000.0),
        None => "n/a".to_owned(),
    };
    println!(
        "\noffered {offered} ({:.0}/s) | accepted {accepted} | rejected {rejected} \
         ({:.1}% backpressure)",
        offered as f64 / offered_elapsed.as_secs_f64(),
        100.0 * rejected as f64 / offered as f64,
    );
    println!(
        "completed {completed} in {:.2}s ({:.0}/s) | {} oracle queries | \
         latency mean {:.1}ms p50 {} p99 {}",
        drained_elapsed.as_secs_f64(),
        completed as f64 / drained_elapsed.as_secs_f64(),
        m.oracle_queries(),
        m.latency().sum() as f64 / m.latency().count().max(1) as f64 / 1000.0,
        p(0.50),
        p(0.99),
    );
    // Warm-up cost: cold dense-table compiles this run (cache misses
    // that built a table), on the kernel reported above.
    let tc = m.table_compile();
    let tc_p99 = match tc.quantile_upper_bound(0.99) {
        Some(us) => format!("≤{us}µs"),
        None => "n/a".to_owned(),
    };
    println!(
        "table compiles: {} cold, {:.2}ms total, p99 {tc_p99} | {} table cache hits",
        tc.count(),
        tc.sum() as f64 / 1000.0,
        m.table_cache_hits(),
    );

    // Per-kind accept→completion latency from the kind-labelled
    // histograms: bucket upper bounds for the quantiles (capped at the
    // observed max), the max exact.
    println!("\nper-kind latency (accept→completion):");
    println!(
        "  {:<10} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "kind", "count", "p50", "p90", "p99", "max"
    );
    for kind in JobKind::ALL {
        let h = m.latency_of(kind);
        let Some(q) = h.summary(&[0.5, 0.9, 0.99]) else {
            continue;
        };
        let ms = |us: u64| format!("{:.2}ms", us as f64 / 1000.0);
        println!(
            "  {:<10} {:>7} {:>10} {:>10} {:>10} {:>10}",
            kind.as_str(),
            h.count(),
            format!("≤{}", ms(q[0])),
            format!("≤{}", ms(q[1])),
            format!("≤{}", ms(q[2])),
            ms(h.max()),
        );
    }

    // Shard-level execution accounting: jobs each worker ran, how many
    // it stole from other lanes (and lost to thieves), and the split of
    // its wall time between executing and waiting for work.
    println!("\nper-shard execution:");
    println!(
        "  {:<6} {:>7} {:>7} {:>7} {:>10} {:>10}",
        "shard", "jobs", "stole", "lost", "busy", "idle"
    );
    let mut steals_total = 0u64;
    for s in 0..m.shards() {
        steals_total += m.shard_steals(s);
        println!(
            "  {:<6} {:>7} {:>7} {:>7} {:>9.2}s {:>9.2}s",
            s,
            m.shard_jobs_executed(s),
            m.shard_steals(s),
            m.shard_stolen_from(s),
            m.shard_busy_micros(s) as f64 / 1e6,
            m.shard_idle_micros(s) as f64 / 1e6,
        );
    }
    println!("  steals total: {steals_total}");

    // Trace drain: write the Chrome trace-event JSON and attribute the
    // slowest traced jobs stage by stage.
    if let Some(tracer) = service.tracer() {
        let spans = service.trace_spans();
        let json = chrome_trace_json(&spans, m.shards());
        std::fs::write(&trace_path, &json).expect("--trace: cannot write trace file");
        println!(
            "\ntrace: {} spans ({} overwritten in ring) → {trace_path} \
             [sample 1/{}; load in chrome://tracing or ui.perfetto.dev]",
            spans.len(),
            tracer.dropped(),
            tracer.sample(),
        );
        let worst = slowest_jobs(&spans, 5);
        if !worst.is_empty() {
            print!(
                "top {} slowest traced jobs:\n  {:<8} {:<10} {:>10}",
                worst.len(),
                "job",
                "kind",
                "total"
            );
            for stage in Stage::ALL {
                if stage != Stage::Submit {
                    print!(" {:>13}", stage.as_str());
                }
            }
            println!();
            for b in &worst {
                print!(
                    "  {:<8} {:<10} {:>9.2}ms",
                    b.job,
                    b.kind.as_str(),
                    b.total_us as f64 / 1000.0
                );
                for stage in Stage::ALL {
                    if stage != Stage::Submit {
                        print!(" {:>11.2}ms", b.stage(stage) as f64 / 1000.0);
                    }
                }
                println!();
            }
        }
    }

    println!("\n--- metrics export ---");
    print!("{}", service.metrics_text());
    service.shutdown();
}
