//! `drat_smoke` — end-to-end checked-UNSAT miter smoke for CI.
//!
//! Builds a planted-equivalent circuit pair, folds the planted witness
//! into a miter (UNSAT by construction: the miter asks for an input
//! where the matched circuits *differ*), solves it with DRAT proof
//! logging on, verifies the proof with the in-tree checker, and writes
//! `miter.cnf` / `miter.drat` to the output directory so the
//! `dratcheck` binary (or any external DRAT checker) can re-verify the
//! exact same artifacts. Exits non-zero on any mismatch: a SAT verdict,
//! a tainted proof, or a rejected refutation.
//!
//! ```text
//! drat_smoke [--width N] [--seed N] [--out DIR]
//! ```

use std::process::ExitCode;

use rand::SeedableRng;
use revmatch::{random_instance, Equivalence, MiterEncoding, Side};
use revmatch_bench::Flags;
use revmatch_sat::{check_drat_unsat, CdclSolver, Solve};

const USAGE: &str = "usage: drat_smoke [--width N] [--seed N] [--out DIR]";
const KNOWN_FLAGS: [&str; 3] = ["width", "seed", "out"];

fn main() -> ExitCode {
    let flags = Flags::parse(&KNOWN_FLAGS, USAGE);
    let width = flags.get_u64("width", 8) as usize;
    let seed = flags.get_u64("seed", 0xD8A7);
    let out_dir = flags.get_str("out", ".");

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = random_instance(Equivalence::new(Side::Np, Side::I), width, &mut rng);
    let miter = MiterEncoding::build(&inst.c1, &inst.c2, &inst.witness)
        .expect("planted circuits share a width");

    let mut solver = CdclSolver::new(&miter.cnf)
        .with_proof()
        .with_branch_hint(miter.input_hint());
    let verdict = solver.solve();
    if verdict != Solve::Unsat {
        eprintln!("drat_smoke: planted miter must be UNSAT, got {verdict:?}");
        return ExitCode::FAILURE;
    }
    let Some(proof) = solver.proof_drat() else {
        eprintln!("drat_smoke: proof unexpectedly tainted or absent");
        return ExitCode::FAILURE;
    };
    let report = match check_drat_unsat(&miter.cnf, &proof) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("drat_smoke: in-tree checker rejected the proof: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cnf_path = format!("{out_dir}/miter.cnf");
    let drat_path = format!("{out_dir}/miter.drat");
    if let Err(e) = std::fs::write(&cnf_path, miter.cnf.to_dimacs()) {
        eprintln!("drat_smoke: cannot write {cnf_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&drat_path, &proof) {
        eprintln!("drat_smoke: cannot write {drat_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "drat_smoke: width-{width} miter UNSAT, proof verified \
         ({} additions, {} deletions, {} conflicts) -> {cnf_path} {drat_path}",
        report.additions,
        report.deletions,
        solver.conflicts(),
    );
    ExitCode::SUCCESS
}
