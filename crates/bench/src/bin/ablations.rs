//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * **synthesis** — MMD basic vs bidirectional gate counts (the
//!   bidirectional refinement is why workload circuits stay compact);
//! * **quantum-k** — Algorithm 1's swap-test repetitions: queries vs
//!   empirical failure rate (why `k = ⌈log2 1/ε⌉` is the right dial);
//! * **verify** — single-round validation strategies: exhaustive vs
//!   Monte-Carlo vs SAT miter, wall-clock per width (why `check_witness`
//!   defaults to exhaustive only below 24 lines);
//! * **peephole** — how much of a matched template's transform layers the
//!   optimizer reclaims (the synthesis application's cleanup step).
//!
//! Run with: `cargo run --release -p revmatch-bench --bin ablations`

use std::time::Instant;

use revmatch::{
    check_witness, check_witness_sat, match_n_i_quantum, Equivalence, MatcherConfig, Oracle, Side,
    VerifyMode,
};
use revmatch_bench::harness_rng;
use revmatch_circuit::{peephole_optimize, synthesize, SynthesisStrategy, TruthTable};
use revmatch_quantum::SwapTestMethod;

fn ablation_synthesis() {
    let mut rng = harness_rng();
    println!("== ablation: synthesis strategy (mean gates over 25 random functions) ==");
    println!(
        "{:>3} {:>10} {:>14} {:>8}",
        "n", "basic", "bidirectional", "saving"
    );
    for w in [3usize, 4, 5, 6, 7] {
        let (mut basic, mut bidir) = (0usize, 0usize);
        let trials = 25;
        for _ in 0..trials {
            let tt = TruthTable::random(w, &mut rng);
            basic += synthesize(&tt, SynthesisStrategy::Basic).unwrap().len();
            bidir += synthesize(&tt, SynthesisStrategy::Bidirectional)
                .unwrap()
                .len();
        }
        println!(
            "{w:>3} {:>10.1} {:>14.1} {:>7.1}%",
            basic as f64 / trials as f64,
            bidir as f64 / trials as f64,
            100.0 * (basic - bidir) as f64 / basic as f64
        );
    }
    println!();
}

fn ablation_quantum_k() {
    let mut rng = harness_rng();
    println!("== ablation: Algorithm 1 swap-test rounds k (n = 5, 400 runs per k) ==");
    println!("{:>3} {:>10} {:>12}", "k", "queries", "failure rate");
    for k in [1usize, 2, 4, 8, 16] {
        let config = MatcherConfig {
            epsilon: 0.5f64.powi(k as i32),
            quantum_k: k,
            swap_method: SwapTestMethod::Analytic,
            quantum_backend: None,
        };
        let runs = 400;
        let mut failures = 0;
        let mut queries = 0u64;
        for _ in 0..runs {
            let inst = revmatch::random_instance(Equivalence::new(Side::N, Side::I), 5, &mut rng);
            let c1 = Oracle::new(inst.c1);
            let c2 = Oracle::new(inst.c2);
            let nu = match_n_i_quantum(&c1, &c2, &config, &mut rng).unwrap();
            if nu != inst.witness.nu_x() {
                failures += 1;
            }
            queries += c1.queries() + c2.queries();
        }
        println!(
            "{k:>3} {:>10.1} {:>12.4}",
            queries as f64 / runs as f64,
            failures as f64 / runs as f64
        );
    }
    println!("(queries grow ~linearly in k; failures shrink as 2^-k — the paper's dial)\n");
}

fn ablation_verification() {
    let mut rng = harness_rng();
    println!("== ablation: witness validation strategies ==");
    println!(
        "{:>3} {:>14} {:>14} {:>14}",
        "n", "exhaustive", "sampled(1024)", "sat miter"
    );
    for w in [8usize, 10, 12] {
        let inst =
            revmatch::random_wide_instance(Equivalence::new(Side::Np, Side::I), w, 3 * w, &mut rng);
        let t0 = Instant::now();
        let a = check_witness(
            &inst.c1,
            &inst.c2,
            &inst.witness,
            VerifyMode::Exhaustive,
            &mut rng,
        )
        .unwrap();
        let t_ex = t0.elapsed();
        let t0 = Instant::now();
        let b = check_witness(
            &inst.c1,
            &inst.c2,
            &inst.witness,
            VerifyMode::Sampled(1024),
            &mut rng,
        )
        .unwrap();
        let t_s = t0.elapsed();
        let t0 = Instant::now();
        let c = check_witness_sat(&inst.c1, &inst.c2, &inst.witness)
            .unwrap()
            .is_equivalent();
        let t_sat = t0.elapsed();
        assert!(a && b && c);
        println!("{w:>3} {:>14.2?} {:>14.2?} {:>14.2?}", t_ex, t_s, t_sat);
    }
    println!("(sampling is width-independent; the miter is complete but pays DPLL search)\n");
}

fn ablation_peephole() {
    let mut rng = harness_rng();
    println!("== ablation: peephole cleanup of matched-template rewrites ==");
    println!(
        "{:>3} {:>12} {:>12} {:>10}",
        "n", "rewrite", "optimized", "reclaimed"
    );
    for w in [4usize, 5, 6] {
        let inst = revmatch::random_instance(Equivalence::new(Side::Np, Side::Np), w, &mut rng);
        // The rewrite a template flow produces: transform layers around the
        // library circuit, followed by the inverse of the same rewrite —
        // i.e. an identity sandwich the optimizer should chew through.
        let rewrite = inst
            .witness
            .surround(&inst.c2)
            .unwrap()
            .then(&inst.witness.surround(&inst.c2).unwrap().inverse())
            .unwrap();
        let optimized = peephole_optimize(&rewrite);
        assert!(optimized.functionally_eq(&rewrite));
        println!(
            "{w:>3} {:>12} {:>12} {:>9.1}%",
            rewrite.len(),
            optimized.len(),
            100.0 * (rewrite.len() - optimized.len()) as f64 / rewrite.len() as f64
        );
    }
    println!();
}

fn ablation_naive_rounds() {
    let mut rng = harness_rng();
    println!("== ablation: §3's point — checking rounds with vs without conditions ==");
    println!(
        "{:>3} {:>8} {:>16} {:>14}",
        "n", "class", "naive rounds", "with witness"
    );
    for w in [3usize, 4] {
        for e in ["N-I", "P-I", "NP-I"] {
            let eq: Equivalence = e.parse().unwrap();
            let inst = revmatch::random_instance(eq, w, &mut rng);
            // Without conditions, each candidate transform costs one
            // equivalence-checking round; the class size bounds the count
            // (and brute force really does find a witness by such rounds).
            assert!(revmatch::brute_force_match(&inst.c1, &inst.c2, eq)
                .unwrap()
                .is_some());
            let naive_rounds = eq.search_space(w);
            // With the conditions in hand: one round (the §3 observation).
            assert!(check_witness(
                &inst.c1,
                &inst.c2,
                &inst.witness,
                VerifyMode::Exhaustive,
                &mut rng,
            )
            .unwrap());
            println!("{w:>3} {e:>8} {naive_rounds:>16} {:>14}", 1);
        }
    }
    println!("(the naive column is the class size — 2^n, n!, or 2^n·n! — vs one round)\n");
}

fn main() {
    ablation_synthesis();
    ablation_quantum_k();
    ablation_verification();
    ablation_peephole();
    ablation_naive_rounds();
}
