//! Regenerates **Table 1**: measured oracle-query counts for every
//! tractable equivalence, against the paper's closed-form bounds.
//!
//! For each row, random promised instances are generated and the matcher
//! of that row is run with query-counting oracles. Counts are totals over
//! all supplied oracles (a composite access charges each underlying box).
//!
//! Trials execute on the sharded [`MatchService`] — instance generation
//! stays sequential (deterministic row values) while solving fans out
//! over `--shards` workers behind a `--queue-capacity`-bounded intake.
//!
//! Run with: `cargo run --release -p revmatch-bench --bin table1 -- \
//!   [--shards N] [--queue-capacity N]`

use revmatch::{EngineJob, Equivalence, JobTicket, MatchService, MatcherConfig, ServiceConfig};
use revmatch_bench::{harness_rng, median, service_flags, Flags, SERVICE_FLAGS};

const USAGE: &str = "usage: table1 [--shards N] [--queue-capacity N]";
const TRIALS: usize = 9;
const EPSILON: f64 = 1e-3;

struct Row {
    inverse: &'static str,
    equivalence: &'static str,
    paradigm: &'static str,
    bound: &'static str,
    /// Measured (n, median queries) pairs.
    series: Vec<(usize, u64)>,
}

fn instance(e: Equivalence, n: usize, rng: &mut impl rand::Rng) -> revmatch::PromiseInstance {
    if n <= 10 {
        revmatch::random_instance(e, n, rng)
    } else {
        revmatch::random_wide_instance(e, n, 3 * n, rng)
    }
}

/// Measures one row cell: `TRIALS` instances of `e` at width `n`,
/// submitted to the service, median of their per-job query totals.
///
/// A `RandomizedFailure` (the ε-probability signature collision of the
/// Eq. 1 matchers) is retried with a fresh derived seed, and the retry's
/// queries are charged to the trial — the total cost of solving it.
fn cell(
    service: &MatchService,
    e: Equivalence,
    n: usize,
    with_inverses: bool,
    rng: &mut rand::rngs::StdRng,
) -> u64 {
    let jobs: Vec<EngineJob> = (0..TRIALS)
        .map(|_| EngineJob::from_instance(&instance(e, n, rng), with_inverses))
        .collect();
    let tickets: Vec<JobTicket> = jobs
        .iter()
        .map(|job| service.submit_wait(job.clone()))
        .collect();
    let samples: Vec<u64> = jobs
        .iter()
        .zip(tickets)
        .map(|(job, ticket)| {
            let mut report = ticket.wait();
            let mut queries = report.queries;
            for _ in 0..5 {
                match &report.witness {
                    Ok(_) => return queries,
                    Err(revmatch::MatchError::RandomizedFailure { .. }) => {
                        report = service.submit_wait(job.clone()).wait();
                        queries += report.queries;
                    }
                    Err(other) => panic!("promised instance must solve: {other}"),
                }
            }
            report.witness.expect("randomized matcher kept failing");
            queries
        })
        .collect();
    median(&samples)
}

fn series(
    service: &MatchService,
    e: Equivalence,
    ns: &[usize],
    with_inverses: bool,
    rng: &mut rand::rngs::StdRng,
) -> Vec<(usize, u64)> {
    ns.iter()
        .map(|&n| (n, cell(service, e, n, with_inverses, rng)))
        .collect()
}

fn main() {
    let flags = Flags::parse(&SERVICE_FLAGS, USAGE);
    let (shards, capacity) = service_flags(&flags);
    let service = MatchService::start(
        ServiceConfig::default()
            .with_shards(shards)
            .with_queue_capacity(capacity)
            .with_matcher(MatcherConfig::with_epsilon(EPSILON))
            .with_seed(0x0DAC_2024),
    );

    let mut rng = harness_rng();
    let e = |s: &str| s.parse::<Equivalence>().unwrap();
    let classical_ns = [4usize, 8, 16, 32, 64];
    let quantum_ns = [2usize, 4, 6, 8];

    let mut rows: Vec<Row> = Vec::new();

    // --- Inverse available -------------------------------------------
    for name in ["N-I", "I-N"] {
        rows.push(Row {
            inverse: "available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(1)",
            series: series(&service, e(name), &classical_ns, true, &mut rng),
        });
    }
    for name in ["I-P", "P-I", "N-P", "P-N", "I-NP", "NP-I"] {
        rows.push(Row {
            inverse: "available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(log n)",
            series: series(&service, e(name), &classical_ns, true, &mut rng),
        });
    }

    // --- Inverse not available ---------------------------------------
    rows.push(Row {
        inverse: "not available",
        equivalence: "I-N",
        paradigm: "classical",
        bound: "O(1)",
        series: series(&service, e("I-N"), &classical_ns, false, &mut rng),
    });
    for name in ["I-P", "I-NP"] {
        rows.push(Row {
            inverse: "not available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(log n + log 1/eps)",
            series: series(&service, e(name), &classical_ns, false, &mut rng),
        });
    }
    for name in ["P-I", "P-N"] {
        rows.push(Row {
            inverse: "not available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(n)",
            series: series(&service, e(name), &classical_ns, false, &mut rng),
        });
    }
    rows.push(Row {
        inverse: "not available",
        equivalence: "N-I",
        paradigm: "quantum",
        bound: "O(n log 1/eps)",
        series: series(&service, e("N-I"), &quantum_ns, false, &mut rng),
    });
    rows.push(Row {
        inverse: "not available",
        equivalence: "NP-I",
        paradigm: "quantum",
        bound: "O(n^2 log 1/eps)",
        series: series(&service, e("NP-I"), &quantum_ns, false, &mut rng),
    });

    // --- Print --------------------------------------------------------
    println!(
        "Table 1 (reproduced): measured oracle queries, median of {TRIALS} trials, eps = {EPSILON}"
    );
    println!(
        "k_rand = ceil(log2(n(n-1)/eps)) probes; quantum k = {} swap-test rounds",
        MatcherConfig::with_epsilon(EPSILON).quantum_k
    );
    println!(
        "solved on {} worker shard{} (lane capacity {capacity}), {} jobs total\n",
        shards,
        if shards == 1 { "" } else { "s" },
        service.metrics().jobs_completed(),
    );
    println!(
        "{:<14} {:<6} {:<10} {:<22} measured queries per n",
        "inverse", "equiv", "paradigm", "paper bound"
    );
    for row in &rows {
        let series_str: Vec<String> = row
            .series
            .iter()
            .map(|(n, q)| format!("n={n}:{q}"))
            .collect();
        println!(
            "{:<14} {:<6} {:<10} {:<22} {}",
            row.inverse,
            row.equivalence,
            row.paradigm,
            row.bound,
            series_str.join("  ")
        );
    }

    // --- Shape checks (who wins / scaling), printed for EXPERIMENTS.md.
    println!("\nshape checks:");
    let find = |inv: &str, eq_name: &str| {
        rows.iter()
            .find(|r| r.inverse == inv && r.equivalence == eq_name)
            .expect("row exists")
    };
    let flat = |r: &Row| r.series.first().unwrap().1 == r.series.last().unwrap().1;
    println!(
        "  O(1) rows flat in n:            N-I*: {}, I-N*: {}, I-N: {}",
        flat(find("available", "N-I")),
        flat(find("available", "I-N")),
        flat(find("not available", "I-N")),
    );
    let pi = find("not available", "P-I");
    let linear = pi.series.last().unwrap().1 as f64 / pi.series.first().unwrap().1 as f64;
    println!(
        "  P-I one-hot grows ~linearly:    {}x queries for 16x larger n",
        linear
    );
    let ip = find("available", "I-P");
    println!(
        "  I-P* grows ~logarithmically:    {:?}",
        ip.series.iter().map(|&(_, q)| q).collect::<Vec<_>>()
    );
    service.shutdown();
}
