//! Regenerates **Table 1**: measured oracle-query counts for every
//! tractable equivalence, against the paper's closed-form bounds.
//!
//! For each row, random promised instances are generated and the matcher
//! of that row is run with query-counting oracles. Counts are totals over
//! all supplied oracles (a composite access charges each underlying box).
//!
//! Run with: `cargo run --release -p revmatch-bench --bin table1`

use rand::Rng;
use revmatch::{solve_promise, Equivalence, MatcherConfig, Oracle, ProblemOracles};
use revmatch_bench::{harness_rng, median};

const TRIALS: usize = 9;
const EPSILON: f64 = 1e-3;

struct Row {
    inverse: &'static str,
    equivalence: &'static str,
    paradigm: &'static str,
    bound: &'static str,
    /// Measured (n, median queries) pairs.
    series: Vec<(usize, u64)>,
}

fn instance(e: Equivalence, n: usize, rng: &mut impl Rng) -> revmatch::PromiseInstance {
    if n <= 10 {
        revmatch::random_instance(e, n, rng)
    } else {
        revmatch::random_wide_instance(e, n, 3 * n, rng)
    }
}

/// Runs a solve and returns total queries, inverse-assisted variant.
fn run_with_inverse(e: Equivalence, n: usize, rng: &mut rand::rngs::StdRng) -> u64 {
    let config = MatcherConfig::with_epsilon(EPSILON);
    let inst = instance(e, n, rng);
    let c1 = Oracle::new(inst.c1);
    let c2 = Oracle::new(inst.c2);
    let c1_inv = c1.inverse_oracle();
    let c2_inv = c2.inverse_oracle();
    let oracles = ProblemOracles::with_inverses(&c1, &c2, &c1_inv, &c2_inv);
    solve_promise(e, &oracles, &config, rng).expect("promised instance must solve");
    oracles.total_queries()
}

/// Runs a solve and returns total queries, no inverses.
fn run_without_inverse(e: Equivalence, n: usize, rng: &mut rand::rngs::StdRng) -> u64 {
    let config = MatcherConfig::with_epsilon(EPSILON);
    let inst = instance(e, n, rng);
    let c1 = Oracle::new(inst.c1);
    let c2 = Oracle::new(inst.c2);
    let oracles = ProblemOracles::without_inverses(&c1, &c2);
    solve_promise(e, &oracles, &config, rng).expect("promised instance must solve");
    oracles.total_queries()
}

fn series(
    ns: &[usize],
    mut f: impl FnMut(usize, &mut rand::rngs::StdRng) -> u64,
    rng: &mut rand::rngs::StdRng,
) -> Vec<(usize, u64)> {
    ns.iter()
        .map(|&n| {
            let samples: Vec<u64> = (0..TRIALS).map(|_| f(n, rng)).collect();
            (n, median(&samples))
        })
        .collect()
}

fn main() {
    let mut rng = harness_rng();
    let e = |s: &str| s.parse::<Equivalence>().unwrap();
    let classical_ns = [4usize, 8, 16, 32, 64];
    let quantum_ns = [2usize, 4, 6, 8];

    let mut rows: Vec<Row> = Vec::new();

    // --- Inverse available -------------------------------------------
    for name in ["N-I", "I-N"] {
        rows.push(Row {
            inverse: "available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(1)",
            series: series(
                &classical_ns,
                |n, r| run_with_inverse(e(name), n, r),
                &mut rng,
            ),
        });
    }
    for name in ["I-P", "P-I", "N-P", "P-N", "I-NP", "NP-I"] {
        rows.push(Row {
            inverse: "available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(log n)",
            series: series(
                &classical_ns,
                |n, r| run_with_inverse(e(name), n, r),
                &mut rng,
            ),
        });
    }

    // --- Inverse not available ---------------------------------------
    rows.push(Row {
        inverse: "not available",
        equivalence: "I-N",
        paradigm: "classical",
        bound: "O(1)",
        series: series(
            &classical_ns,
            |n, r| run_without_inverse(e("I-N"), n, r),
            &mut rng,
        ),
    });
    for name in ["I-P", "I-NP"] {
        rows.push(Row {
            inverse: "not available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(log n + log 1/eps)",
            series: series(
                &classical_ns,
                |n, r| run_without_inverse(e(name), n, r),
                &mut rng,
            ),
        });
    }
    for name in ["P-I", "P-N"] {
        rows.push(Row {
            inverse: "not available",
            equivalence: name,
            paradigm: "classical",
            bound: "O(n)",
            series: series(
                &classical_ns,
                |n, r| run_without_inverse(e(name), n, r),
                &mut rng,
            ),
        });
    }
    rows.push(Row {
        inverse: "not available",
        equivalence: "N-I",
        paradigm: "quantum",
        bound: "O(n log 1/eps)",
        series: series(
            &quantum_ns,
            |n, r| run_without_inverse(e("N-I"), n, r),
            &mut rng,
        ),
    });
    rows.push(Row {
        inverse: "not available",
        equivalence: "NP-I",
        paradigm: "quantum",
        bound: "O(n^2 log 1/eps)",
        series: series(
            &quantum_ns,
            |n, r| run_without_inverse(e("NP-I"), n, r),
            &mut rng,
        ),
    });

    // --- Print --------------------------------------------------------
    println!(
        "Table 1 (reproduced): measured oracle queries, median of {TRIALS} trials, eps = {EPSILON}"
    );
    println!(
        "k_rand = ceil(log2(n(n-1)/eps)) probes; quantum k = {} swap-test rounds\n",
        MatcherConfig::with_epsilon(EPSILON).quantum_k
    );
    println!(
        "{:<14} {:<6} {:<10} {:<22} measured queries per n",
        "inverse", "equiv", "paradigm", "paper bound"
    );
    for row in &rows {
        let series_str: Vec<String> = row
            .series
            .iter()
            .map(|(n, q)| format!("n={n}:{q}"))
            .collect();
        println!(
            "{:<14} {:<6} {:<10} {:<22} {}",
            row.inverse,
            row.equivalence,
            row.paradigm,
            row.bound,
            series_str.join("  ")
        );
    }

    // --- Shape checks (who wins / scaling), printed for EXPERIMENTS.md.
    println!("\nshape checks:");
    let find = |inv: &str, eq_name: &str| {
        rows.iter()
            .find(|r| r.inverse == inv && r.equivalence == eq_name)
            .expect("row exists")
    };
    let flat = |r: &Row| r.series.first().unwrap().1 == r.series.last().unwrap().1;
    println!(
        "  O(1) rows flat in n:            N-I*: {}, I-N*: {}, I-N: {}",
        flat(find("available", "N-I")),
        flat(find("available", "I-N")),
        flat(find("not available", "I-N")),
    );
    let pi = find("not available", "P-I");
    let linear = pi.series.last().unwrap().1 as f64 / pi.series.first().unwrap().1 as f64;
    println!(
        "  P-I one-hot grows ~linearly:    {}x queries for 16x larger n",
        linear
    );
    let ip = find("available", "I-P");
    println!(
        "  I-P* grows ~logarithmically:    {:?}",
        ip.series.iter().map(|&(_, q)| q).collect::<Vec<_>>()
    );
}
